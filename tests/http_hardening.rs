//! Hostile-input hardening of the HTTP layer, over real sockets: a
//! live [`Server`] fed raw bytes a well-behaved client would never
//! send. Each abuse must come back as the *right* typed status — 431
//! oversized head, 413 oversized declared body, 400 truncated body or
//! garbage request line, 408 silent peer — and, the part that matters,
//! the worker must survive to serve a clean request immediately after.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use icicle_serve::http::{MAX_BODY_BYTES, MAX_HEAD_BYTES};
use icicle_serve::{AnalysisService, Client, SchedulerConfig, Server, ServerConfig, ServiceConfig};

/// One shared server for the whole file: every test throws its abuse
/// at the same worker pool and then proves the pool still answers.
struct Fixture {
    addr: SocketAddr,
    dir: PathBuf,
}

fn fixture() -> &'static Fixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("icicle-http-hardening-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(
            AnalysisService::open(ServiceConfig {
                data_dir: dir.clone(),
                jobs: 1,
                executors: 1,
                scheduler: SchedulerConfig::default(),
            })
            .unwrap(),
        );
        let _executors = service.start();
        let config = ServerConfig {
            read_deadline: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        };
        let server = Server::bind_with(service, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        Fixture { addr, dir }
    })
}

/// Sends raw bytes and returns the status line of whatever comes back
/// (empty if the server just closed the connection).
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The peer may answer-and-close before consuming everything we
    // send (an oversized body, say) — a write error is part of the
    // abuse, not a test failure.
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let text = String::from_utf8_lossy(&response);
    text.lines().next().unwrap_or("").to_string()
}

/// The liveness probe every abuse is followed by: the same worker pool
/// must serve a clean request.
fn assert_still_serving(addr: SocketAddr) {
    let client = Client::new(addr.to_string());
    assert!(client.health(), "worker died on hostile input");
}

#[test]
fn garbage_request_line_is_400() {
    let f = fixture();
    let status = send_raw(f.addr, b"NOT EVEN HTTP\r\n\r\n");
    assert!(status.contains("400"), "got: {status}");
    assert_still_serving(f.addr);
}

#[test]
fn oversized_head_is_431() {
    let f = fixture();
    let head = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "y".repeat(MAX_HEAD_BYTES)
    );
    let status = send_raw(f.addr, head.as_bytes());
    assert!(status.contains("431"), "got: {status}");
    assert_still_serving(f.addr);
}

#[test]
fn oversized_declared_body_is_413() {
    let f = fixture();
    let head = format!(
        "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    let status = send_raw(f.addr, head.as_bytes());
    assert!(status.contains("413"), "got: {status}");
    assert_still_serving(f.addr);
}

#[test]
fn truncated_body_is_400() {
    let f = fixture();
    // Declares 100 bytes, delivers 10, then closes: a malformed
    // request, answered 400 (the peer is still there to read it).
    let status = send_raw(
        f.addr,
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nten bytes!",
    );
    assert!(status.contains("400"), "got: {status}");
    assert_still_serving(f.addr);
}

#[test]
fn silent_peer_is_cut_with_408() {
    let f = fixture();
    // Connect and say nothing: the pre-hardening server parked a
    // worker on this forever. Now the read deadline trips and the
    // worker answers 408 before hanging up.
    let mut stream = TcpStream::connect(f.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let status_line = String::from_utf8_lossy(&response)
        .lines()
        .next()
        .unwrap_or("")
        .to_string();
    assert!(status_line.contains("408"), "got: {status_line}");
    assert_still_serving(f.addr);
}

#[test]
fn half_sent_head_also_trips_the_deadline() {
    let f = fixture();
    // A slowloris opener: part of a request line, then silence.
    let mut stream = TcpStream::connect(f.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"GET /healthz HT").unwrap();
    stream.flush().unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let status_line = String::from_utf8_lossy(&response)
        .lines()
        .next()
        .unwrap_or("")
        .to_string();
    assert!(status_line.contains("408"), "got: {status_line}");
    assert_still_serving(f.addr);
}

#[test]
fn zz_cleanup_tempdir() {
    // Runs last alphabetically under the default test harness; purely
    // best-effort hygiene for the shared fixture's data dir.
    let f = fixture();
    assert_still_serving(f.addr);
    let _ = std::fs::remove_dir_all(&f.dir);
}
