//! Fully-associative translation lookaside buffers.

const PAGE_SHIFT: u64 = 12;

/// Result of a TLB lookup chain (L1 TLB then shared L2 TLB).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TlbResult {
    /// Hit in the first-level TLB: no extra latency.
    L1Hit,
    /// Missed L1 but hit the shared L2 TLB.
    L2Hit,
    /// Missed both levels: a page walk is required.
    Walk,
}

impl TlbResult {
    /// Whether the first-level TLB missed.
    pub fn l1_missed(self) -> bool {
        !matches!(self, TlbResult::L1Hit)
    }

    /// Whether the shared second-level TLB also missed.
    pub fn l2_missed(self) -> bool {
        matches!(self, TlbResult::Walk)
    }
}

/// A fully-associative TLB with LRU replacement.
///
/// Translation itself is identity (the interpreter runs on physical
/// addresses); the TLB exists to produce the `ITLB-miss`, `DTLB-miss`, and
/// `L2-TLB-miss` performance events and their latency.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, last_use)
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the page containing `addr`, filling on miss.
    ///
    /// Returns whether the lookup hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let vpn = addr >> PAGE_SHIFT;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .expect("non-empty at capacity");
            self.entries.swap_remove(idx);
        }
        self.entries.push((vpn, self.stamp));
        false
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits_after_first_touch() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ff8));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut t = Tlb::new(2);
        t.access(0x1000); // page 1
        t.access(0x2000); // page 2
        t.access(0x1000); // refresh page 1
        t.access(0x3000); // evicts page 2
        assert!(t.access(0x1000));
        assert!(!t.access(0x2000));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Tlb::new(0);
    }

    #[test]
    fn result_predicates() {
        assert!(!TlbResult::L1Hit.l1_missed());
        assert!(TlbResult::L2Hit.l1_missed());
        assert!(!TlbResult::L2Hit.l2_missed());
        assert!(TlbResult::Walk.l2_missed());
    }
}
