//! A `perf record`-style sampling profiler.
//!
//! Characterization tools "collect or sample strategically chosen
//! performance events" (§II-C); this module implements the sampling
//! side: every `period`-th retired instruction contributes its PC to a
//! histogram, and samples symbolize against the program's labels — a
//! flat profile identifying *where* the slots of a TMA class are spent.

use std::collections::HashMap;

use icicle_events::{EventCore, EventId};
use icicle_isa::Program;
use icicle_pmu::{CounterArch, CsrFile, EventSelection, HpmConfig};

use crate::error::PerfError;

/// One symbolized profile entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfileEntry {
    /// The nearest preceding label (or `"?"` if the PC is outside the
    /// text segment).
    pub label: String,
    /// Samples attributed to this label.
    pub samples: u64,
}

/// A flat sampling profile.
#[derive(Clone, Debug)]
pub struct Profile {
    entries: Vec<ProfileEntry>,
    total_samples: u64,
    period: u64,
}

impl Profile {
    /// Entries, hottest first.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Total samples taken.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The sampling period used (instructions per sample).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The fraction of samples attributed to `label`.
    pub fn fraction_of(&self, label: &str) -> f64 {
        if self.total_samples == 0 {
            return 0.0;
        }
        self.entries
            .iter()
            .find(|e| e.label == label)
            .map(|e| e.samples as f64 / self.total_samples as f64)
            .unwrap_or(0.0)
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} samples, one per {} retired instructions",
            self.total_samples, self.period
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:>7.2}% {:>8}  {}",
                100.0 * e.samples as f64 / self.total_samples.max(1) as f64,
                e.samples,
                e.label
            )?;
        }
        Ok(())
    }
}

/// The sampling profiler.
#[derive(Copy, Clone, Debug)]
pub struct Profiler {
    period: u64,
    max_cycles: u64,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new(97)
    }
}

impl Profiler {
    /// Creates a profiler sampling every `period` retired instructions.
    /// Prefer a period co-prime with loop lengths (the default, 97) so
    /// sampling does not resonate with the program structure — the same
    /// reason hardware profilers randomize their period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> Profiler {
        assert!(period > 0, "period must be non-zero");
        Profiler {
            period,
            max_cycles: 100_000_000,
        }
    }

    /// Runs `core` to completion, sampling a PC every `period`
    /// assertions of `event` via PMU counter-overflow interrupts — a
    /// `perf record -e <event>` equivalent. For example, sampling on
    /// `D$-miss` yields a cache-miss-site profile.
    ///
    /// Like hardware event-based sampling, the attributed PC is the most
    /// recently *retired* instruction at overflow time, so samples skid
    /// past the precise trigger by a few instructions.
    ///
    /// # Errors
    ///
    /// Propagates counter-programming failures and reports a
    /// [`PerfError::CycleBudget`] if the core never finishes.
    pub fn profile_event(
        &self,
        core: &mut dyn EventCore,
        program: &Program,
        event: EventId,
    ) -> Result<Profile, PerfError> {
        let mut csr = CsrFile::new();
        csr.enable();
        csr.configure(
            0,
            HpmConfig {
                selection: EventSelection::single(event),
                arch: CounterArch::AddWires,
                sources: core.issue_width().max(core.commit_width()),
            },
        )?;
        csr.clear_inhibit(0)?;
        csr.arm_overflow(0, self.period)?;

        let mut histogram: HashMap<String, u64> = HashMap::new();
        let mut total = 0u64;
        let mut last_pc: Option<u64> = None;
        while !core.is_done() {
            if core.cycle() >= self.max_cycles {
                return Err(PerfError::CycleBudget {
                    core: core.name().to_string(),
                    budget: self.max_cycles,
                });
            }
            let v = core.step();
            csr.tick(v);
            if let Some(&pc) = core.retired_pcs().last() {
                last_pc = Some(pc);
            }
            if csr.take_overflow(0)? {
                total += 1;
                let label = last_pc
                    .and_then(|pc| program.label_at_or_before(pc))
                    .map(|(name, _)| name.to_string())
                    .unwrap_or_else(|| "?".to_string());
                *histogram.entry(label).or_insert(0) += 1;
            }
        }
        Ok(Profile {
            entries: sorted_entries(histogram),
            total_samples: total,
            period: self.period,
        })
    }

    /// Runs `core` to completion, sampling retirement PCs, and
    /// symbolizes against `program`'s labels.
    ///
    /// # Errors
    ///
    /// Reports a [`PerfError::CycleBudget`] if the core never finishes.
    pub fn profile(
        &self,
        core: &mut dyn EventCore,
        program: &Program,
    ) -> Result<Profile, PerfError> {
        let mut histogram: HashMap<String, u64> = HashMap::new();
        let mut total = 0u64;
        let mut until_next = self.period;
        while !core.is_done() {
            if core.cycle() >= self.max_cycles {
                return Err(PerfError::CycleBudget {
                    core: core.name().to_string(),
                    budget: self.max_cycles,
                });
            }
            core.step();
            for &pc in core.retired_pcs() {
                until_next -= 1;
                if until_next == 0 {
                    until_next = self.period;
                    total += 1;
                    let label = program
                        .label_at_or_before(pc)
                        .map(|(name, _)| name.to_string())
                        .unwrap_or_else(|| "?".to_string());
                    *histogram.entry(label).or_insert(0) += 1;
                }
            }
        }
        Ok(Profile {
            entries: sorted_entries(histogram),
            total_samples: total,
            period: self.period,
        })
    }
}

fn sorted_entries(histogram: HashMap<String, u64>) -> Vec<ProfileEntry> {
    let mut entries: Vec<ProfileEntry> = histogram
        .into_iter()
        .map(|(label, samples)| ProfileEntry { label, samples })
        .collect();
    entries.sort_by(|a, b| {
        b.samples
            .cmp(&a.samples)
            .then_with(|| a.label.cmp(&b.label))
    });
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_isa::{Interpreter, ProgramBuilder, Reg};
    use icicle_rocket::{Rocket, RocketConfig};

    /// Two loops with a 4:1 dynamic instruction ratio under labels
    /// `hot` and `cold`.
    fn two_loop_program() -> Program {
        let mut b = ProgramBuilder::new("two-loops");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 4000);
        b.label("hot");
        b.addi(Reg::T0, Reg::T0, 1);
        b.xori(Reg::A0, Reg::A0, 3);
        b.blt(Reg::T0, Reg::T1, "hot");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 1000);
        b.label("cold");
        b.addi(Reg::T0, Reg::T0, 1);
        b.xori(Reg::A0, Reg::A0, 5);
        b.blt(Reg::T0, Reg::T1, "cold");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn profile_finds_the_hot_loop() {
        let program = two_loop_program();
        let stream = Interpreter::new(&program).run(1_000_000).unwrap();
        let mut core = Rocket::new(RocketConfig::default(), stream);
        let profile = Profiler::new(23).profile(&mut core, &program).unwrap();
        assert!(profile.total_samples() > 400);
        assert_eq!(profile.entries()[0].label, "hot");
        let hot = profile.fraction_of("hot");
        let cold = profile.fraction_of("cold");
        assert!(
            (hot / cold - 4.0).abs() < 0.8,
            "expected ~4:1 hot/cold, got {hot}/{cold}"
        );
    }

    #[test]
    fn display_lists_hottest_first() {
        let program = two_loop_program();
        let stream = Interpreter::new(&program).run(1_000_000).unwrap();
        let mut core = Rocket::new(RocketConfig::default(), stream);
        let profile = Profiler::default().profile(&mut core, &program).unwrap();
        let text = profile.to_string();
        let hot_pos = text.find("hot").unwrap();
        let cold_pos = text.find("cold").unwrap();
        assert!(hot_pos < cold_pos, "{text}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let _ = Profiler::new(0);
    }

    #[test]
    fn event_profile_finds_the_miss_site() {
        use icicle_events::EventId;
        // One loop streams a large array (all the D$ misses), the other
        // spins on registers (none).
        let mut b = ProgramBuilder::new("miss-sites");
        let buf = b.alloc_data(512 * 1024);
        b.li(Reg::S0, buf as i64);
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 6000);
        b.label("misses");
        b.slli(Reg::T2, Reg::T0, 3);
        b.add(Reg::T2, Reg::S0, Reg::T2);
        b.ld(Reg::T3, Reg::T2, 0);
        b.addi(Reg::T0, Reg::T0, 8); // one load per block
        b.blt(Reg::T0, Reg::T1, "misses");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 3000);
        b.label("compute");
        b.addi(Reg::T0, Reg::T0, 1);
        b.xori(Reg::A0, Reg::A0, 7);
        b.blt(Reg::T0, Reg::T1, "compute");
        b.halt();
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(1_000_000).unwrap();
        let mut core = Rocket::new(RocketConfig::default(), stream);
        let profile = Profiler::new(5)
            .profile_event(&mut core, &program, EventId::DCacheMiss)
            .unwrap();
        assert!(profile.total_samples() > 10);
        assert_eq!(profile.entries()[0].label, "misses");
        assert!(profile.fraction_of("misses") > 0.9);
    }
}
