//! The observability layer end to end: span trees stay well-formed
//! under the threaded campaign runner, and the metrics registry is
//! deterministic at any worker count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use icicle_campaign::{run_campaign, CampaignSpec, CoreSelect, RunOptions};
use icicle_obs::{self as obs, MetricsRegistry, Record, RecordKind, RingCollector};
use icicle_pmu::CounterArch;

/// The tracing runtime is process-global; tests that install a
/// collector must not overlap.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tiny_spec() -> CampaignSpec {
    CampaignSpec::new("obs-layer")
        .workloads(["vvadd", "towers"])
        .cores([CoreSelect::Rocket])
        .archs([CounterArch::AddWires])
}

/// Replays the record log and asserts the span tree is well-formed:
/// per-thread starts and ends nest like brackets, every span closes
/// exactly once, and every parent link points at an already-open span
/// on the same thread.
fn assert_well_formed(records: &[Record]) {
    let mut open_per_thread: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut closed: Vec<u64> = Vec::new();
    for r in records {
        match r.kind {
            RecordKind::SpanStart => {
                if let Some(parent) = r.parent {
                    let stack = open_per_thread.get(&r.thread).cloned().unwrap_or_default();
                    assert_eq!(
                        stack.last(),
                        Some(&parent),
                        "span {} `{}` links to parent {parent}, but that span \
                         is not innermost on thread {}",
                        r.id,
                        r.name,
                        r.thread
                    );
                }
                open_per_thread.entry(r.thread).or_default().push(r.id);
            }
            RecordKind::SpanEnd => {
                let stack = open_per_thread
                    .get_mut(&r.thread)
                    .unwrap_or_else(|| panic!("span {} ends on a thread with no opens", r.id));
                assert_eq!(
                    stack.pop(),
                    Some(r.id),
                    "span {} `{}` ends out of nesting order",
                    r.id,
                    r.name
                );
                assert!(!closed.contains(&r.id), "span {} closed twice", r.id);
                closed.push(r.id);
            }
            RecordKind::Event => {
                // Events may appear anywhere; nothing to check beyond
                // the parent link, which mirrors SpanStart's rule.
                if let Some(parent) = r.parent {
                    let stack = open_per_thread.get(&r.thread).cloned().unwrap_or_default();
                    assert_eq!(stack.last(), Some(&parent));
                }
            }
        }
    }
    for (thread, stack) in &open_per_thread {
        assert!(
            stack.is_empty(),
            "thread {thread} leaked open spans: {stack:?}"
        );
    }
}

#[test]
fn campaign_span_tree_is_well_formed() {
    let _guard = serial();
    let ring = Arc::new(RingCollector::new(65_536));
    obs::install(
        obs::Level::Debug,
        Arc::clone(&ring) as Arc<dyn obs::Collector>,
    );
    let report = run_campaign(&tiny_spec(), &RunOptions::with_jobs(4));
    obs::shutdown();
    assert!(report.passed(), "campaign must succeed to emit full spans");

    let records = ring.records();
    let starts = records
        .iter()
        .filter(|r| r.kind == RecordKind::SpanStart)
        .count();
    let ends = records
        .iter()
        .filter(|r| r.kind == RecordKind::SpanEnd)
        .count();
    // One campaign.run span plus one campaign.cell span per cell.
    assert!(starts >= 3, "expected run + cell spans, got {starts}");
    assert_eq!(starts, ends, "every span must close exactly once");
    assert!(records
        .iter()
        .any(|r| r.kind == RecordKind::SpanStart && r.name == "campaign.run"));
    assert!(records
        .iter()
        .any(|r| r.kind == RecordKind::SpanStart && r.name == "campaign.cell"));
    assert_well_formed(&records);
}

#[test]
fn campaign_metrics_are_worker_count_invariant() {
    let _guard = serial();
    let spec = tiny_spec();
    let run = |jobs: usize| -> String {
        let registry = Arc::new(MetricsRegistry::new());
        let report = run_campaign(
            &spec,
            &RunOptions {
                jobs,
                metrics: Some(Arc::clone(&registry)),
                ..RunOptions::default()
            },
        );
        assert!(report.passed());
        registry.render()
    };
    let one = run(1);
    let eight = run(8);
    assert_eq!(
        one, eight,
        "metrics snapshots must be byte-identical at any --jobs count"
    );
    assert!(one.contains("campaign.cells.total"));
    assert!(one.contains("campaign.cell_cycles"));
}

#[test]
fn verify_matrix_metrics_are_worker_count_invariant() {
    let _guard = serial();
    use icicle_verify::{run_matrix, MatrixOptions};
    let spec = tiny_spec();
    let run = |jobs: usize| -> String {
        let registry = Arc::new(MetricsRegistry::new());
        let report = run_matrix(
            &spec,
            &MatrixOptions {
                jobs,
                metrics: Some(Arc::clone(&registry)),
                ..MatrixOptions::default()
            },
        );
        assert!(report.passed(), "{report}");
        registry.render()
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = serial();
    obs::shutdown();
    assert!(!obs::enabled(obs::Level::Error));
    // The disabled path must not panic and must stay silent.
    let _span = obs::span(obs::Level::Info, "never.seen");
    obs::event(obs::Level::Info, "never.seen.event");
}
