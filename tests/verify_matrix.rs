//! End-to-end contract of the verification subsystem: a representative
//! workload × core × arch grid verifies counter TMA against the trace
//! ground truth within derived bounds, the aggregate output is
//! byte-identical at any worker count, the golden snapshot under
//! `tests/golden/` matches byte-for-byte (regenerate with
//! `ICICLE_UPDATE_GOLDEN=1`), and a seeded fuzz smoke finds no
//! divergence.
//!
//! The grid holds to light workload sizes so the whole file stays
//! CI-sized; `icicle-tma verify --matrix` covers the full micro suite.

use std::path::Path;
use std::sync::OnceLock;

use icicle::campaign::{CampaignSpec, CoreSelect};
use icicle::prelude::{BoomSize, CounterArch};
use icicle::verify::{
    compare_or_update, run_fuzz, run_matrix, FuzzOptions, GoldenOutcome, MatrixOptions,
    MatrixReport,
};

/// 4 workloads × 3 cores × 3 archs = 36 cells.
fn golden_grid() -> CampaignSpec {
    CampaignSpec::new("golden-small")
        .workloads(["vvadd", "towers", "qsort", "brmiss"])
        .cores([
            CoreSelect::Rocket,
            CoreSelect::Boom(BoomSize::Small),
            CoreSelect::Boom(BoomSize::Large),
        ])
        .archs([
            CounterArch::Scalar,
            CounterArch::AddWires,
            CounterArch::Distributed,
        ])
}

/// One shared parallel run; every test compares against it.
fn shared_report() -> &'static MatrixReport {
    static REPORT: OnceLock<MatrixReport> = OnceLock::new();
    REPORT.get_or_init(|| run_matrix(&golden_grid(), &MatrixOptions::with_jobs(4)))
}

#[test]
fn the_grid_verifies_within_derived_bounds() {
    let report = shared_report();
    assert_eq!(report.verdicts.len(), 36);
    assert!(report.failures.is_empty(), "{:?}", report.failures);
    assert!(report.passed(), "{report}");
    // The bounds are tight enough to mean something: some cell consumes
    // a real fraction of its allowance.
    let worst = report.worst().expect("non-empty grid");
    assert!(worst.worst_ratio() > 0.0);
    assert!(worst.worst_ratio() <= 1.0);
}

#[test]
fn matrix_output_is_thread_count_invariant() {
    let serial = run_matrix(&golden_grid(), &MatrixOptions::with_jobs(1));
    let parallel = shared_report();
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.snapshot(), parallel.snapshot());
}

#[test]
fn golden_snapshot_matches_byte_for_byte() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/small_matrix.json");
    match compare_or_update(&path, &shared_report().snapshot()) {
        Ok(GoldenOutcome::Matched | GoldenOutcome::Updated) => {}
        Err(e) => panic!("{e}"),
    }
}

#[test]
fn seeded_fuzz_smoke_finds_no_divergence() {
    let report = run_fuzz(&FuzzOptions {
        cases: 50,
        seed: 2026,
        ..FuzzOptions::default()
    });
    assert!(report.passed(), "{report}");
    // Divergence is nonzero but bounded — the differential is measuring
    // something, not vacuously passing.
    assert!(report.max_ratio > 0.0);
    assert!(report.max_ratio <= 1.0);
}

#[test]
fn stock_counters_cannot_enter_the_matrix() {
    let spec = CampaignSpec::new("stock-rejected")
        .workloads(["vvadd"])
        .cores([CoreSelect::Rocket])
        .archs([CounterArch::Stock]);
    let report = run_matrix(&spec, &MatrixOptions::with_jobs(1));
    assert!(report.verdicts.is_empty());
    assert_eq!(report.failures.len(), 1);
    assert!(report.failures[0].1.contains("stock"));
}
