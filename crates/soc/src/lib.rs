//! # icicle-soc
//!
//! A multi-core system-on-chip with a shared, bus-arbitrated L2 — this
//! reproduction's take on the paper's "performance characterization on
//! heterogeneous systems on Chipyard" future-work item (§VII).
//!
//! A [`SocBuilder`] assembles any mix of Rocket and BOOM cores, each
//! running its own workload over a private L1 but a *shared* L2
//! ([`SharedL2`]). The [`Soc`] steps every core in
//! lockstep (one cycle each, deterministic order), so cross-core
//! interference — capacity thrashing and bus queueing — emerges in the
//! TMA results exactly the way it would on a real SoC: as growth in the
//! victim core's Mem-Bound slots.
//!
//! [`SharedL2`]: icicle_mem::SharedL2
//!
//! ```
//! use icicle_soc::SocBuilder;
//! use icicle_rocket::RocketConfig;
//! use icicle_workloads::micro;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = micro::vvadd(256);
//! let b = micro::rsort(256);
//! let mut soc = SocBuilder::new()
//!     .rocket(RocketConfig::default(), &a)?
//!     .rocket(RocketConfig::default(), &b)?
//!     .build();
//! let reports = soc.run(10_000_000)?;
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.report.cycles > 0));
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use icicle_boom::{Boom, BoomConfig};
use icicle_events::{EventCore, EventCounts, EventId};
use icicle_mem::{CacheConfig, MemoryHierarchy, SharedL2};
use icicle_perf::{Perf, PerfReport};
use icicle_pmu::{CounterArch, CsrFile, PmuError};
use icicle_rocket::{Rocket, RocketConfig};
use icicle_tma::{TlbCosts, TlbInput, TlbLevel, TmaInput, TmaModel};
use icicle_workloads::Workload;

/// Errors from SoC construction or simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SocError {
    /// A workload failed to execute architecturally.
    Workload(icicle_isa::IsaError),
    /// The SoC has no cores.
    Empty,
    /// A core did not finish within the cycle budget.
    CycleBudget { core: String, budget: u64 },
    /// Counter programming or readback failed on a core's CSR file.
    Pmu(PmuError),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Workload(e) => write!(f, "workload failed: {e}"),
            SocError::Empty => write!(f, "soc has no cores"),
            SocError::CycleBudget { core, budget } => {
                write!(f, "core {core} exceeded the {budget}-cycle budget")
            }
            SocError::Pmu(e) => write!(f, "pmu: {e}"),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Workload(e) => Some(e),
            SocError::Pmu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<icicle_isa::IsaError> for SocError {
    fn from(e: icicle_isa::IsaError) -> SocError {
        SocError::Workload(e)
    }
}

impl From<PmuError> for SocError {
    fn from(e: PmuError) -> SocError {
        SocError::Pmu(e)
    }
}

struct SocCore {
    core: Box<dyn EventCore>,
    workload_name: String,
    counts: EventCounts,
    csr: CsrFile,
    slot_map: Vec<(usize, icicle_events::EventId)>,
    finished_at: Option<u64>,
}

/// Per-core results of an SoC run.
#[derive(Clone, Debug)]
pub struct SocReport {
    /// The workload this core ran.
    pub workload: String,
    /// The core's standard perf report. Each core carries its own CSR
    /// file programmed with add-wires counters, so `hw_counts` is a true
    /// hardware view and `perfect_counts` the validation view.
    pub report: PerfReport,
}

/// Builds a [`Soc`] core by core.
pub struct SocBuilder {
    shared_l2: SharedL2,
    cores: Vec<SocCore>,
}

impl Default for SocBuilder {
    fn default() -> SocBuilder {
        SocBuilder::new()
    }
}

impl SocBuilder {
    /// Starts an SoC with the paper's 512 KiB shared L2 and a 2-cycle
    /// bus occupancy per access.
    pub fn new() -> SocBuilder {
        SocBuilder::with_l2(CacheConfig::l2_default(), 2)
    }

    /// Starts an SoC with an explicit shared-L2 geometry and bus
    /// occupancy.
    pub fn with_l2(l2: CacheConfig, bus_occupancy: u64) -> SocBuilder {
        SocBuilder {
            shared_l2: SharedL2::new(l2, bus_occupancy),
            cores: Vec::new(),
        }
    }

    /// A handle to the shared L2 (for inspecting contention afterwards).
    pub fn shared_l2(&self) -> SharedL2 {
        self.shared_l2.clone()
    }

    /// Each core gets its own physical address space (see
    /// [`MemoryHierarchy::with_address_salt`]).
    fn next_salt(&self) -> u64 {
        (self.cores.len() as u64 + 1) << 40
    }

    /// Adds a Rocket core running `workload`.
    ///
    /// # Errors
    ///
    /// Propagates architectural execution and counter-programming
    /// failures.
    pub fn rocket(
        mut self,
        config: RocketConfig,
        workload: &Workload,
    ) -> Result<SocBuilder, SocError> {
        let stream = workload.execute()?;
        let mem = MemoryHierarchy::with_shared_l2(config.memory, self.shared_l2.clone())
            .with_address_salt(self.next_salt());
        let core = Rocket::with_memory(config, stream, mem);
        let (csr, slot_map) = Perf::program_all_events(&core, CounterArch::AddWires)?;
        self.cores.push(SocCore {
            core: Box::new(core),
            workload_name: workload.name().to_string(),
            counts: EventCounts::new(),
            csr,
            slot_map,
            finished_at: None,
        });
        Ok(self)
    }

    /// Adds a BOOM core running `workload`.
    ///
    /// # Errors
    ///
    /// Propagates architectural execution and counter-programming
    /// failures.
    pub fn boom(mut self, config: BoomConfig, workload: &Workload) -> Result<SocBuilder, SocError> {
        let stream = workload.execute()?;
        let mem = MemoryHierarchy::with_shared_l2(config.memory, self.shared_l2.clone())
            .with_address_salt(self.next_salt());
        let core = Boom::with_memory(config, stream, workload.program_arc(), mem);
        let (csr, slot_map) = Perf::program_all_events(&core, CounterArch::AddWires)?;
        self.cores.push(SocCore {
            core: Box::new(core),
            workload_name: workload.name().to_string(),
            counts: EventCounts::new(),
            csr,
            slot_map,
            finished_at: None,
        });
        Ok(self)
    }

    /// Finalizes the SoC.
    pub fn build(self) -> Soc {
        Soc {
            shared_l2: self.shared_l2,
            cores: self.cores,
            cycle: 0,
        }
    }
}

/// A running multi-core system.
pub struct Soc {
    shared_l2: SharedL2,
    cores: Vec<SocCore>,
    cycle: u64,
}

impl Soc {
    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The shared L2 handle (contention statistics).
    pub fn shared_l2(&self) -> &SharedL2 {
        &self.shared_l2
    }

    /// Steps every unfinished core one cycle, in core order.
    pub fn step(&mut self) {
        for c in &mut self.cores {
            if c.finished_at.is_some() {
                continue;
            }
            let v = c.core.step();
            c.csr.tick(v);
            c.counts.observe(v);
            if c.core.is_done() {
                c.finished_at = Some(c.core.cycle());
            }
        }
        self.cycle += 1;
    }

    /// Whether every core has retired its workload.
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(|c| c.finished_at.is_some())
    }

    /// Runs until every core finishes, producing one report per core.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Empty`] for a core-less SoC and
    /// [`SocError::CycleBudget`] if any core fails to finish in
    /// `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<Vec<SocReport>, SocError> {
        if self.cores.is_empty() {
            return Err(SocError::Empty);
        }
        while !self.is_done() {
            if self.cycle >= max_cycles {
                let stuck = self
                    .cores
                    .iter()
                    .find(|c| c.finished_at.is_none())
                    .expect("some core unfinished");
                return Err(SocError::CycleBudget {
                    core: stuck.workload_name.clone(),
                    budget: max_cycles,
                });
            }
            self.step();
        }
        let mut reports = Vec::with_capacity(self.cores.len());
        for c in &self.cores {
            let cycles = c.finished_at.expect("all finished");
            // Read this core's own CSR file back.
            let mut hw = EventCounts::new();
            hw.set(EventId::Cycles, c.csr.mcycle().min(cycles));
            hw.set(EventId::InstrRetired, c.csr.minstret());
            for (slot, event) in &c.slot_map {
                hw.set(*event, c.csr.read(*slot)?);
            }
            let model = if c.core.commit_width() == 1 {
                TmaModel::rocket()
            } else {
                TmaModel::boom(c.core.commit_width())
            };
            let tma = model.analyze(&TmaInput::from_counts(&hw));
            let tlb = TlbLevel::analyze(
                &tma,
                &TlbInput {
                    itlb_misses: hw.get(EventId::ITlbMiss),
                    dtlb_misses: hw.get(EventId::DTlbMiss),
                    l2_tlb_misses: hw.get(EventId::L2TlbMiss),
                },
                &TlbCosts::default(),
                cycles,
                model.commit_width,
            );
            reports.push(SocReport {
                workload: c.workload_name.clone(),
                report: PerfReport {
                    core_name: c.core.name().to_string(),
                    cycles,
                    instret: hw.get(EventId::InstrRetired),
                    hw_counts: hw,
                    perfect_counts: c.counts.clone(),
                    tma,
                    tlb,
                    trace: None,
                    lanes: Vec::new(),
                },
            });
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_workloads::{micro, spec};

    #[test]
    fn empty_soc_is_an_error() {
        let mut soc = SocBuilder::new().build();
        assert!(matches!(soc.run(1000), Err(SocError::Empty)));
    }

    #[test]
    fn two_rockets_both_finish() {
        let a = micro::vvadd(256);
        let b = micro::rsort(256);
        let mut soc = SocBuilder::new()
            .rocket(RocketConfig::default(), &a)
            .unwrap()
            .rocket(RocketConfig::default(), &b)
            .unwrap()
            .build();
        let reports = soc.run(5_000_000).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].workload, "vvadd");
        assert!(reports.iter().all(|r| r.report.instret > 0));
        assert!(reports
            .iter()
            .all(|r| (r.report.tma.top.total() - 1.0).abs() < 1e-9));
    }

    #[test]
    fn heterogeneous_mix_runs() {
        let a = micro::mergesort(256);
        let b = micro::qsort(256);
        let mut soc = SocBuilder::new()
            .rocket(RocketConfig::default(), &a)
            .unwrap()
            .boom(BoomConfig::large(), &b)
            .unwrap()
            .build();
        let reports = soc.run(5_000_000).unwrap();
        assert_eq!(reports[0].report.core_name, "rocket");
        assert_eq!(reports[1].report.core_name, "large-boom");
    }

    #[test]
    fn l2_thrasher_slows_its_neighbour() {
        // Victim: a 256 KiB chase (4096 cache blocks — half the L2's
        // lines, 8x the L1D's) walked several times, so most accesses
        // are L2 hits it depends on keeping resident.
        let victim = || spec::mcf_sized(1 << 15, 20_000);
        // Aggressor: a 1 MiB cold chase that evicts L2 lines the whole
        // time the victim runs.
        let aggressor = spec::mcf_sized(1 << 17, 20_000);

        let mut solo = SocBuilder::new()
            .boom(BoomConfig::large(), &victim())
            .unwrap()
            .build();
        let solo_cycles = solo.run(50_000_000).unwrap()[0].report.cycles;

        let mut contended = SocBuilder::new()
            .boom(BoomConfig::large(), &victim())
            .unwrap()
            .boom(BoomConfig::large(), &aggressor)
            .unwrap()
            .build();
        let reports = contended.run(50_000_000).unwrap();
        let with_neighbour = reports[0].report.cycles;
        // The aggressor evicts at DRAM-fill rate (one block per ~100
        // cycles), so the interference here is a few percent — clearly
        // measurable and strictly positive.
        assert!(
            with_neighbour > solo_cycles + solo_cycles / 40,
            "expected >2.5% interference: solo {solo_cycles}, contended {with_neighbour}"
        );
        // The interference shows up where TMA says it should.
        assert!(reports[0].report.tma.backend.mem_bound > 0.3);
        assert!(contended.shared_l2().contention_cycles() > 0);
    }

    #[test]
    fn cycle_budget_error_names_the_stuck_core() {
        let w = micro::mergesort(1 << 10);
        let mut soc = SocBuilder::new()
            .rocket(RocketConfig::default(), &w)
            .unwrap()
            .build();
        match soc.run(100) {
            Err(SocError::CycleBudget { core, budget }) => {
                assert_eq!(core, "mergesort");
                assert_eq!(budget, 100);
            }
            other => panic!("expected a budget error, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            SocBuilder::new()
                .rocket(
                    RocketConfig::default(),
                    &icicle_workloads::riscv_tests::median(512),
                )
                .unwrap()
                .boom(BoomConfig::medium(), &micro::vvadd(512))
                .unwrap()
                .build()
        };
        let a = build().run(5_000_000).unwrap();
        let b = build().run(5_000_000).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report.cycles, y.report.cycles);
            assert_eq!(x.report.instret, y.report.instret);
        }
    }
}
