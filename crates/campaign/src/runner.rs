//! The parallel, fault-tolerant campaign runner.
//!
//! Jobs (grid cells) go into a shared queue; a `std::thread` worker pool
//! drains it. Four properties the rest of the stack relies on:
//!
//! * **Determinism** — each job's inputs are a pure function of its
//!   [`CellSpec`] (the workload-data seed is derived by
//!   [`crate::fingerprint::data_seed`], never from global state), and
//!   results are written into a slot indexed by the cell's grid
//!   position. Retry backoff is a pure function of the cell fingerprint
//!   and the attempt number. The aggregate report is therefore
//!   byte-identical whether the campaign runs on 1 thread or 64, and
//!   regardless of how the scheduler interleaves workers.
//! * **Caching** — before simulating, a worker consults the
//!   [`ResultCache`] under the cell's fingerprint; hits skip simulation
//!   entirely. A campaign re-run over an unchanged grid does zero
//!   simulations. With a [`CheckpointLog`] attached, completed cells
//!   are also journalled so `--resume` re-runs only unfinished ones.
//! * **Isolation** — every cell is supervised: the simulation runs
//!   under [`std::panic::catch_unwind`], so a panicking worker costs
//!   the campaign exactly one cell (recorded as a typed
//!   [`CellError::Panicked`] failure), and every lock on the path
//!   recovers from poison instead of cascading.
//! * **Supervision** — retryable failures (panics, tripped watchdogs)
//!   get up to `retries` extra attempts with deterministic backoff; the
//!   attempt count lands in the report. In fail-fast mode
//!   (`keep_going: false`) the first failure cancels the queue and the
//!   cells that never ran are reported as skipped, not lost.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use icicle_boom::{Boom, BoomConfig};
use icicle_faults::FaultInjector;
use icicle_obs::{self as obs, MetricsRegistry};
use icicle_perf::{Perf, PerfOptions, SkipPolicy};
use icicle_rocket::{Rocket, RocketConfig};
use icicle_soc::{SocJobs, SocMix};
use icicle_workloads as workloads;

use crate::cache::{Lease, ResultCache};
use crate::checkpoint::CheckpointLog;
use crate::error::CellError;
use crate::fingerprint::{data_seed, fingerprint, mix_seed, Fingerprint};
use crate::report::{CampaignReport, CellFailure, CellResult, Incident, RunStats};
use crate::spec::{CampaignSpec, CellSpec, CoreSelect};
use crate::sync::{into_inner_unpoisoned, lock_unpoisoned, wait_unpoisoned};

/// Scheduling priority of one submitted job.
///
/// Three bands are enough for the analysis server's policy (interactive
/// verifies ahead of bulk sweeps) without turning the queue into a full
/// priority heap; within a band, FIFO order is preserved, which is what
/// keeps the campaign runner's accounting and determinism tests stable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Priority {
    /// Drained before everything else (interactive clients).
    High,
    /// The default band; plain [`JobQueue::push`] lands here.
    #[default]
    Normal,
    /// Drained only when the other bands are empty (bulk sweeps).
    Low,
}

impl Priority {
    /// Band index: 0 is drained first.
    fn band(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The wire name (`high` / `normal` / `low`) used by the service
    /// API and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name produced by [`Priority::name`].
    pub fn from_name(name: &str) -> Option<Priority> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// A blocking multi-producer multi-consumer queue of job indices
/// (`Mutex<VecDeque>` + condvar — the workspace stays dependency-free),
/// with three FIFO priority bands (see [`Priority`]).
///
/// The campaign runner fills it up front and closes it, but the
/// blocking-pop shape means a streaming producer (the analysis server's
/// scheduler, a spec arriving over a socket) plugs in without touching
/// the workers.
///
/// The queue also carries the runner's accounting contract: it counts
/// every submission, so after a run the caller can assert that each
/// submitted job produced exactly one outcome — drained, cancelled, or
/// failed, never silently lost.
#[derive(Debug, Default)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct QueueState {
    /// One FIFO per band, indexed by [`Priority::band`].
    bands: [VecDeque<usize>; 3],
    closed: bool,
    submitted: usize,
}

impl JobQueue {
    /// An empty, open queue.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// Enqueues one job index at [`Priority::Normal`].
    ///
    /// # Panics
    ///
    /// Panics if the queue is already closed.
    pub fn push(&self, job: usize) {
        self.push_with_priority(job, Priority::Normal);
    }

    /// Enqueues one job index into the band for `priority`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is already closed.
    pub fn push_with_priority(&self, job: usize, priority: Priority) {
        let mut state = lock_unpoisoned(&self.state);
        assert!(!state.closed, "push into a closed JobQueue");
        state.bands[priority.band()].push_back(job);
        state.submitted += 1;
        drop(state);
        self.ready.notify_one();
    }

    /// Marks the queue complete: workers drain what remains, then stop.
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Cancels the queue (fail-fast): closes it *and* drains the jobs
    /// that have not been popped yet, returning them so the caller can
    /// record a skipped outcome for each — cancellation must not leave
    /// submitted jobs unaccounted for. Jobs come back in drain order
    /// (high band first, FIFO within a band).
    pub fn cancel(&self) -> Vec<usize> {
        let mut state = lock_unpoisoned(&self.state);
        state.closed = true;
        let mut cancelled = Vec::new();
        for band in &mut state.bands {
            cancelled.extend(band.drain(..));
        }
        drop(state);
        self.ready.notify_all();
        cancelled
    }

    /// Jobs ever submitted via [`JobQueue::push`] /
    /// [`JobQueue::push_with_priority`].
    pub fn submitted(&self) -> usize {
        lock_unpoisoned(&self.state).submitted
    }

    /// Jobs currently queued (not yet popped), across all bands.
    pub fn queued(&self) -> usize {
        let state = lock_unpoisoned(&self.state);
        state.bands.iter().map(VecDeque::len).sum()
    }

    /// Blocks for the next job (highest non-empty band first); `None`
    /// once the queue is closed and empty.
    pub fn pop(&self) -> Option<usize> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = state.bands.iter_mut().find_map(VecDeque::pop_front) {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = wait_unpoisoned(&self.ready, state);
        }
    }
}

/// Live progress counters, updated as cells finish.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Progress {
    /// Cells in the campaign.
    pub total: usize,
    /// Cells finished by simulation.
    pub simulated: usize,
    /// Cells served from the cache.
    pub cached: usize,
    /// Cells skipped because a checkpoint (plus cache entry) proved
    /// them complete in an earlier run.
    pub resumed: usize,
    /// Cells that failed.
    pub failed: usize,
    /// Cells cancelled by fail-fast before they ran.
    pub skipped: usize,
}

impl Progress {
    /// Cells accounted for so far.
    pub fn done(&self) -> usize {
        self.simulated + self.cached + self.resumed + self.failed + self.skipped
    }
}

/// A progress observer: called after every finished cell, from worker
/// threads.
pub type ProgressFn = dyn Fn(Progress) + Send + Sync;

/// Knobs of one campaign run.
pub struct RunOptions {
    /// Worker threads (clamped to ≥ 1).
    pub jobs: usize,
    /// The result cache; `None` disables caching entirely.
    pub cache: Option<Arc<ResultCache>>,
    /// Optional live progress callback.
    pub progress: Option<Box<ProgressFn>>,
    /// Extra attempts granted to retryable failures (panics, tripped
    /// watchdogs). `1` means: one retry after the first failure.
    pub retries: u32,
    /// `true` (the default): a failed cell is recorded and the campaign
    /// continues. `false`: the first failure cancels the queue and the
    /// unstarted cells are reported as skipped.
    pub keep_going: bool,
    /// Completed-cell journal backing `--resume`.
    pub checkpoint: Option<Arc<CheckpointLog>>,
    /// Skip cells the checkpoint proves complete (requires their result
    /// to still be in the cache; otherwise they re-run normally).
    pub resume: bool,
    /// Deterministic fault-injection plan, exercised by the `faults`
    /// subcommand and the resilience test-suite.
    pub faults: Option<Arc<FaultInjector>>,
    /// Metrics registry for this run's counters (cells by provenance,
    /// cache hits/misses, retries, checkpoint writes, a cell-cycles
    /// histogram). `None` (the default) records nothing. Every recorded
    /// quantity is deterministic, so a snapshot is byte-identical at any
    /// `jobs` count.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Cooperative cancellation: when the flag flips to `true`, workers
    /// stop picking up new cells and every cell that has not run yet is
    /// reported as skipped (the same accounting fail-fast uses). Cells
    /// already simulating finish normally — the runner never tears down
    /// a simulation mid-flight. `None` (the default) means the run is
    /// not cancellable.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Cycle-skipping policy for every simulated cell; `None` (the
    /// default) defers to the ambient [`SkipPolicy::resolve`]. The policy
    /// never enters the cell fingerprint: both modes produce bit-identical
    /// results, so cached entries are interchangeable across modes.
    pub skip: Option<SkipPolicy>,
    /// Execution engine for multi-core (SoC) cells; `None` (the default)
    /// defers to the ambient [`SocJobs::resolve`]. Like `skip`, the
    /// engine never enters the cell fingerprint: lockstep and parallel
    /// runs produce byte-identical results at any thread count, so
    /// cached entries are interchangeable across engines.
    pub soc_jobs: Option<SocJobs>,
    /// Directory for flight-recorder post-mortem dumps. When set *and*
    /// the recorder is armed *and* a trace context is live, a worker
    /// panic writes `<dir>/<trace>.jsonl` before being folded into a
    /// typed [`CellError::Panicked`]. `None` (the default) never
    /// touches the filesystem.
    pub postmortem_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            jobs: 1,
            cache: Some(Arc::new(ResultCache::in_memory())),
            progress: None,
            retries: 1,
            keep_going: true,
            checkpoint: None,
            resume: false,
            faults: None,
            metrics: None,
            cancel: None,
            skip: None,
            soc_jobs: None,
            postmortem_dir: None,
        }
    }
}

impl RunOptions {
    /// `jobs` workers over a fresh in-memory cache.
    pub fn with_jobs(jobs: usize) -> RunOptions {
        RunOptions {
            jobs,
            ..RunOptions::default()
        }
    }
}

/// How one finished cell came to be.
enum Provenance {
    Simulated,
    Cached,
    Resumed,
}

/// Everything a worker knows about one finished cell.
struct CellOutcome {
    result: Result<CellResult, CellError>,
    provenance: Provenance,
    attempts: u32,
    incidents: Vec<Incident>,
}

/// Runs every cell of `spec` and aggregates the results.
///
/// See the module docs for the determinism / caching / isolation /
/// supervision contract.
pub fn run_campaign(spec: &CampaignSpec, options: &RunOptions) -> CampaignReport {
    let cells = spec.cells();
    let total = cells.len();
    let _run_span = obs::span_with(obs::Level::Info, "campaign.run", || {
        vec![
            ("name", spec.name.as_str().into()),
            ("cells", total.into()),
            ("jobs", options.jobs.max(1).into()),
        ]
    });
    // Worker threads are raw `std::thread`s, so the caller's trace
    // context does not follow them implicitly: capture it here — under
    // the `campaign.run` span, so the hint points at it — and re-enter
    // it in every worker. That is what parents `campaign.cell` spans
    // into the submitting job's tree instead of orphaning them.
    let trace = obs::handoff();
    let queue = JobQueue::new();
    for index in 0..total {
        queue.push(index);
    }
    queue.close();

    let slots: Vec<Mutex<Option<CellOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let simulated = AtomicUsize::new(0);
    let cached = AtomicUsize::new(0);
    let resumed = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);

    let worker_count = options.jobs.max(1).min(total.max(1));
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| {
                let _trace = trace.map(obs::enter);
                while let Some(index) = queue.pop() {
                    if options
                        .cancel
                        .as_deref()
                        .is_some_and(|flag| flag.load(Ordering::SeqCst))
                    {
                        // External cancellation: this cell and everything
                        // still queued become skips, reusing the
                        // fail-fast accounting so nothing is lost.
                        cancelled.store(true, Ordering::SeqCst);
                        let mut to_skip = vec![index];
                        to_skip.extend(queue.cancel());
                        for job in to_skip {
                            skipped.fetch_add(1, Ordering::Relaxed);
                            store_outcome(
                                &slots[job],
                                CellOutcome {
                                    result: Err(CellError::Skipped),
                                    provenance: Provenance::Simulated,
                                    attempts: 0,
                                    incidents: Vec::new(),
                                },
                            );
                        }
                        if let Some(report) = &options.progress {
                            report(Progress {
                                total,
                                simulated: simulated.load(Ordering::Relaxed),
                                cached: cached.load(Ordering::Relaxed),
                                resumed: resumed.load(Ordering::Relaxed),
                                failed: failed.load(Ordering::Relaxed),
                                skipped: skipped.load(Ordering::Relaxed),
                            });
                        }
                        continue;
                    }
                    let cell = &cells[index];
                    let _cell_span = obs::span_with(obs::Level::Info, "campaign.cell", || {
                        vec![("cell", cell.label().into()), ("index", index.into())]
                    });
                    let mut outcome = run_one_cell(cell, index, options);
                    if let Some(injector) = options.faults.as_deref() {
                        if injector.should_poison_lock(index, 1) {
                            // Poison the cell's own result-slot mutex
                            // the only way `std::sync` allows — a
                            // panicking holder — then store through it
                            // anyway, proving the recovery path.
                            poison_for_fault(&slots[index]);
                            outcome.incidents.push(Incident {
                                label: cell.label(),
                                kind: "poisoned-lock".to_string(),
                                detail: "result-slot mutex poisoned by a panicking holder; \
                                         recovered via PoisonError::into_inner"
                                    .to_string(),
                            });
                        }
                    }
                    let counter = match (&outcome.result, &outcome.provenance) {
                        (Err(_), _) => &failed,
                        (Ok(_), Provenance::Resumed) => &resumed,
                        (Ok(_), Provenance::Cached) => &cached,
                        (Ok(_), Provenance::Simulated) => &simulated,
                    };
                    counter.fetch_add(1, Ordering::Relaxed);
                    let failed_cell = outcome.result.is_err();
                    store_outcome(&slots[index], outcome);
                    if failed_cell && !options.keep_going && !cancelled.swap(true, Ordering::SeqCst)
                    {
                        // Fail-fast: cancel the queue and give every
                        // job that never ran a skipped outcome, so the
                        // accounting below still balances.
                        for job in queue.cancel() {
                            skipped.fetch_add(1, Ordering::Relaxed);
                            store_outcome(
                                &slots[job],
                                CellOutcome {
                                    result: Err(CellError::Skipped),
                                    provenance: Provenance::Simulated,
                                    attempts: 0,
                                    incidents: Vec::new(),
                                },
                            );
                        }
                    }
                    if let Some(report) = &options.progress {
                        report(Progress {
                            total,
                            simulated: simulated.load(Ordering::Relaxed),
                            cached: cached.load(Ordering::Relaxed),
                            resumed: resumed.load(Ordering::Relaxed),
                            failed: failed.load(Ordering::Relaxed),
                            skipped: skipped.load(Ordering::Relaxed),
                        });
                    }
                }
            });
        }
    });

    // Every submitted job must have an outcome — drained, retried,
    // failed, or cancelled. A hole here is a runner bug, not a cell
    // failure, so it asserts instead of degrading.
    assert_eq!(queue.submitted(), total, "runner submitted every cell");

    // Aggregate in grid order — the source of byte-identical output.
    let mut report = CampaignReport {
        name: spec.name.clone(),
        cells: Vec::with_capacity(total),
        failures: Vec::new(),
        skipped: Vec::new(),
        incidents: Vec::new(),
        stats: RunStats {
            simulated: simulated.into_inner(),
            cached: cached.into_inner(),
            resumed: resumed.into_inner(),
            failed: failed.into_inner(),
            skipped: skipped.into_inner(),
        },
    };
    let cycles_histogram = options.metrics.as_deref().map(|m| {
        m.histogram(
            "campaign.cell_cycles",
            &[1_000, 10_000, 100_000, 1_000_000, 10_000_000],
        )
    });
    for (slot, cell) in slots.into_iter().zip(&cells) {
        let outcome = into_inner_unpoisoned(slot)
            .expect("every submitted job produced an outcome (runner invariant)");
        match outcome.result {
            Ok(result) => {
                if let Some(histogram) = &cycles_histogram {
                    histogram.observe(result.cycles);
                }
                report.cells.push(result)
            }
            Err(CellError::Skipped) => report.skipped.push(cell.label()),
            Err(error) => report.failures.push(CellFailure {
                label: cell.label(),
                kind: error.kind().to_string(),
                error: error.to_string(),
                attempts: outcome.attempts,
            }),
        }
        report.incidents.extend(outcome.incidents);
    }
    if let Some(metrics) = options.metrics.as_deref() {
        metrics.counter("campaign.cells.total").add(total as u64);
        metrics
            .counter("campaign.cells.simulated")
            .add(report.stats.simulated as u64);
        metrics
            .counter("campaign.cells.cached")
            .add(report.stats.cached as u64);
        metrics
            .counter("campaign.cells.resumed")
            .add(report.stats.resumed as u64);
        metrics
            .counter("campaign.cells.failed")
            .add(report.stats.failed as u64);
        metrics
            .counter("campaign.cells.skipped")
            .add(report.stats.skipped as u64);
    }
    report
}

/// Stores an outcome into its slot, recovering the lock if an injected
/// fault (or a real bug) poisoned it.
fn store_outcome(slot: &Mutex<Option<CellOutcome>>, outcome: CellOutcome) {
    *lock_unpoisoned(slot) = Some(outcome);
}

/// Produces the outcome for one cell: resume check, cache check, then
/// supervised simulation with bounded retry.
fn run_one_cell(cell: &CellSpec, index: usize, options: &RunOptions) -> CellOutcome {
    let fp = fingerprint(cell);
    let mut incidents = Vec::new();

    // Resume: a checkpointed cell whose result is still cached is
    // complete — skip even the cache-provenance bookkeeping of a
    // normal warm hit. A checkpointed cell whose cache entry rotted
    // falls through and re-runs: the checkpoint is a journal, not a
    // substitute for the data.
    if options.resume {
        if let (Some(checkpoint), Some(cache)) = (&options.checkpoint, &options.cache) {
            if checkpoint.contains(fp) {
                if let Some(mut hit) = cache.get(fp) {
                    hit.from_cache = true;
                    return CellOutcome {
                        result: Ok(hit),
                        provenance: Provenance::Resumed,
                        attempts: 0,
                        incidents,
                    };
                }
                incidents.push(Incident {
                    label: cell.label(),
                    kind: "resume-cache-miss".to_string(),
                    detail: "checkpointed but its cache entry was lost or corrupt; re-running"
                        .to_string(),
                });
            }
        }
    }

    let Some(cache) = options.cache.as_ref() else {
        // Uncached run: simulate unconditionally.
        let (result, attempts) = supervised_simulate(cell, index, fp, options, &mut incidents);
        if result.is_ok() {
            checkpoint_cell(fp, cell, index, options, &mut incidents);
        }
        return CellOutcome {
            result,
            provenance: Provenance::Simulated,
            attempts,
            incidents,
        };
    };

    // Single-flight through the shared store: when several campaigns
    // (the server's concurrent jobs) race on the same fingerprint,
    // exactly one worker leads and simulates; the others block inside
    // `lease` and come back with a hit. The wait is wall-clock (it
    // depends on scheduling), so its histogram is volatile: visible to
    // `/metrics`, excluded from the canonical jobs-invariant snapshot.
    let leased_at = Instant::now();
    let lease = cache.lease(fp);
    if let Some(metrics) = options.metrics.as_deref() {
        metrics
            .histogram_volatile(
                "campaign.lease.wait_us",
                &[100, 1_000, 10_000, 100_000, 1_000_000],
            )
            .observe(leased_at.elapsed().as_micros() as u64);
    }
    match lease {
        Lease::Hit(mut hit) => {
            hit.from_cache = true;
            obs::event_with(obs::Level::Debug, "campaign.cache.hit", || {
                vec![("cell", cell.label().into())]
            });
            if let Some(metrics) = options.metrics.as_deref() {
                metrics.counter("campaign.cache.hits").inc();
            }
            checkpoint_cell(fp, cell, index, options, &mut incidents);
            CellOutcome {
                result: Ok(*hit),
                provenance: Provenance::Cached,
                attempts: 0,
                incidents,
            }
        }
        Lease::Lead(flight) => {
            obs::event_with(obs::Level::Debug, "campaign.cache.miss", || {
                vec![("cell", cell.label().into())]
            });
            if let Some(metrics) = options.metrics.as_deref() {
                metrics.counter("campaign.cache.misses").inc();
            }
            let (result, attempts) = supervised_simulate(cell, index, fp, options, &mut incidents);
            if let Ok(result) = &result {
                cache.put(fp, result);
                corrupt_cache_entry(fp, cell, index, attempts, options, &mut incidents);
                checkpoint_cell(fp, cell, index, options, &mut incidents);
            }
            // Release the flight only now: on success the result is
            // already in the store, on failure a parked waiter is
            // promoted to leader and retries the computation.
            drop(flight);
            CellOutcome {
                result,
                provenance: Provenance::Simulated,
                attempts,
                incidents,
            }
        }
    }
}

/// Runs the simulation under `catch_unwind`, retrying retryable
/// failures up to `options.retries` times with deterministic backoff.
fn supervised_simulate(
    cell: &CellSpec,
    index: usize,
    fp: Fingerprint,
    options: &RunOptions,
    incidents: &mut Vec<Incident>,
) -> (Result<CellResult, CellError>, u32) {
    let injector = options.faults.as_deref();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut attempt_cell = cell.clone();
        if let Some(budget) = injector.and_then(|i| i.cycle_budget_override(index, attempt)) {
            // An injected slow cell: clamp the watchdog budget so the
            // cell times out the way a genuinely wedged one would.
            attempt_cell.max_cycles = attempt_cell.max_cycles.min(budget);
        }
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if let Some(i) = injector {
                i.maybe_panic(index, attempt);
            }
            simulate_cell_with(&attempt_cell, options.skip, options.soc_jobs)
        }));
        let outcome = match caught {
            Ok(outcome) => outcome,
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                dump_panic_postmortem(cell, index, attempt, fp, &message, options, incidents);
                Err(CellError::Panicked { message })
            }
        };
        match outcome {
            Ok(result) => return (Ok(result), attempt),
            Err(error) if error.retryable() && attempt <= options.retries => {
                obs::event_with(obs::Level::Warn, "campaign.retry", || {
                    vec![
                        ("cell", cell.label().into()),
                        ("attempt", attempt.into()),
                        ("kind", error.kind().into()),
                    ]
                });
                if let Some(metrics) = options.metrics.as_deref() {
                    metrics.counter("campaign.retries").inc();
                }
                let steps = retry_backoff(fp, attempt);
                incidents.push(Incident {
                    label: cell.label(),
                    kind: "retry".to_string(),
                    detail: format!(
                        "attempt {attempt} failed ({}); backed off {steps} steps and retried",
                        error.kind()
                    ),
                });
            }
            Err(error) => return (Err(error), attempt),
        }
    }
}

/// Flight-recorder dump for a caught worker panic: when the run has a
/// post-mortem directory, the recorder is armed, and a trace context is
/// live on this worker, the recent ring records for the trace land in
/// `<dir>/<trace>.jsonl` before the panic is folded into a typed
/// [`CellError`]. Best-effort by design — a dump failure must never
/// escalate a contained cell failure into a runner failure, so I/O
/// errors are reported as incidents, not propagated.
fn dump_panic_postmortem(
    cell: &CellSpec,
    index: usize,
    attempt: u32,
    fp: Fingerprint,
    message: &str,
    options: &RunOptions,
    incidents: &mut Vec<Incident>,
) {
    let Some(dir) = options.postmortem_dir.as_deref() else {
        return;
    };
    if !obs::flight_armed() {
        return;
    }
    let Some(ctx) = obs::current() else {
        return;
    };
    let extra = vec![
        ("cell", obs::Json::Str(cell.label())),
        ("cell_index", obs::Json::Int(index as u64)),
        ("attempt", obs::Json::Int(u64::from(attempt))),
        ("fingerprint", obs::Json::Str(format!("{:016x}", fp.0))),
        ("panic", obs::Json::Str(message.to_string())),
    ];
    match obs::write_postmortem(dir, ctx.trace, "worker_panic", extra) {
        Ok(path) => {
            obs::event_with(obs::Level::Warn, "campaign.postmortem.write", || {
                vec![
                    ("cell", cell.label().into()),
                    ("trace", ctx.trace.to_hex().into()),
                    ("path", path.display().to_string().into()),
                ]
            });
        }
        Err(error) => incidents.push(Incident {
            label: cell.label(),
            kind: "postmortem-write-failed".to_string(),
            detail: format!("flight-recorder dump failed: {error}"),
        }),
    }
}

/// Records `fp` in the checkpoint, then applies the truncated-report
/// fault (chopping the log mid-line the way a dying disk or a SIGKILL
/// mid-write would) if one is planned for this cell.
fn checkpoint_cell(
    fp: Fingerprint,
    cell: &CellSpec,
    index: usize,
    options: &RunOptions,
    incidents: &mut Vec<Incident>,
) {
    let Some(checkpoint) = &options.checkpoint else {
        return;
    };
    checkpoint.record(fp);
    obs::event_with(obs::Level::Debug, "campaign.checkpoint.write", || {
        vec![("cell", cell.label().into())]
    });
    if let Some(metrics) = options.metrics.as_deref() {
        metrics.counter("campaign.checkpoint.writes").inc();
    }
    if let Some(injector) = options.faults.as_deref() {
        if injector.should_truncate_report(index, 1) {
            truncate_tail(checkpoint.path(), 5);
            incidents.push(Incident {
                label: cell.label(),
                kind: "truncated-report".to_string(),
                detail: "checkpoint log truncated mid-entry; the torn line is dropped on resume"
                    .to_string(),
            });
        }
    }
}

/// Applies the corrupt-cache-entry fault: scribbles over the entry just
/// written, proving later runs degrade it to a miss (and quarantine it)
/// instead of failing.
fn corrupt_cache_entry(
    fp: Fingerprint,
    cell: &CellSpec,
    index: usize,
    attempts: u32,
    options: &RunOptions,
    incidents: &mut Vec<Incident>,
) {
    let Some(injector) = options.faults.as_deref() else {
        return;
    };
    if !injector.should_corrupt_cache(index, attempts) {
        return;
    }
    let Some(path) = options.cache.as_ref().and_then(|c| c.entry_path(fp)) else {
        return;
    };
    let _ = std::fs::write(&path, "{ corrupted by fault injection");
    incidents.push(Incident {
        label: cell.label(),
        kind: "corrupt-cache-entry".to_string(),
        detail: "disk cache entry corrupted after write; future reads quarantine it as a miss"
            .to_string(),
    });
}

/// Poisons `mutex` the only way `std::sync` allows: panic while holding
/// it. Used by the runner to realize the poisoned-lock fault.
pub fn poison_for_fault<T: Send>(mutex: &Mutex<T>) {
    std::thread::scope(|scope| {
        let _ = scope
            .spawn(|| {
                let _guard = mutex.lock();
                panic!("injected fault: poisoning lock");
            })
            .join();
    });
}

/// Chops `keep_off` bytes from the end of the file at `path`
/// (best-effort), simulating a torn write.
fn truncate_tail(path: &std::path::Path, keep_off: u64) {
    let Ok(metadata) = std::fs::metadata(path) else {
        return;
    };
    let Ok(file) = std::fs::OpenOptions::new().write(true).open(path) else {
        return;
    };
    let _ = file.set_len(metadata.len().saturating_sub(keep_off));
}

/// Deterministic retry backoff: a pure function of the cell fingerprint
/// and the attempt number, realized as a bounded spin so it costs the
/// same (and reports the same) on every run at every thread count.
fn retry_backoff(fp: Fingerprint, attempt: u32) -> u64 {
    let mix =
        fp.0.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(attempt.min(63))
            ^ u64::from(attempt);
    let steps = (mix % 509) + (1 << attempt.min(10));
    for _ in 0..steps {
        std::hint::spin_loop();
    }
    steps
}

/// Renders a caught panic payload as the human-readable cause.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Simulates one cell: workload → stream → core → perf → distilled
/// result. Uses the ambient [`SkipPolicy`] and [`SocJobs`].
pub fn simulate_cell(cell: &CellSpec) -> Result<CellResult, CellError> {
    simulate_cell_with(cell, None, None)
}

/// [`simulate_cell`] with an explicit cycle-skipping policy and SoC
/// execution engine (`None` defers to the ambient
/// [`SkipPolicy::resolve`] / [`SocJobs::resolve`]).
pub fn simulate_cell_with(
    cell: &CellSpec,
    skip: Option<SkipPolicy>,
    soc_jobs: Option<SocJobs>,
) -> Result<CellResult, CellError> {
    let seed = data_seed(cell);
    if let CoreSelect::Soc(mix) = cell.core {
        return simulate_soc_cell(cell, mix, seed, soc_jobs);
    }
    let workload = workloads::by_name_seeded(&cell.workload, seed)
        .ok_or_else(|| CellError::UnknownWorkload(cell.workload.clone()))?;
    let stream = workload.execute()?;
    let perf = Perf::with_options(PerfOptions {
        arch: cell.arch,
        max_cycles: cell.max_cycles,
        skip: skip.unwrap_or_else(SkipPolicy::resolve),
        ..PerfOptions::default()
    });
    let report = match cell.core {
        CoreSelect::Rocket => {
            let mut core = Rocket::new(RocketConfig::default(), stream);
            perf.run(&mut core)
        }
        CoreSelect::Boom(size) => {
            let mut core = Boom::new(BoomConfig::for_size(size), stream, workload.program_arc());
            perf.run(&mut core)
        }
        CoreSelect::Soc(_) => unreachable!("soc cells handled above"),
    }?;
    Ok(CellResult::from_report(cell.clone(), &report))
}

/// Simulates one multi-core (SoC) cell. Every core runs the cell's
/// workload, but each core derives its own data seed (core 0 keeps the
/// cell's [`data_seed`], core `k` mixes in `k`), so cores never execute
/// byte-identical streams and shared-L2 interference is non-trivial.
/// SoC cores always measure with the add-wires counter architecture
/// (the paper's hardware design); the engine choice never affects the
/// result bytes, so it stays out of the cell fingerprint.
fn simulate_soc_cell(
    cell: &CellSpec,
    mix: SocMix,
    seed: u64,
    soc_jobs: Option<SocJobs>,
) -> Result<CellResult, CellError> {
    let per_core: Vec<_> = (0..mix.num_cores() as u64)
        .map(|k| {
            let core_seed = if k == 0 { seed } else { mix_seed(seed, k) };
            workloads::by_name_seeded(&cell.workload, core_seed)
                .ok_or_else(|| CellError::UnknownWorkload(cell.workload.clone()))
        })
        .collect::<Result<_, _>>()?;
    let mut soc = mix.build(&per_core)?;
    let reports = soc.run_with(cell.max_cycles, SocJobs::resolve(soc_jobs))?;
    Ok(CellResult::from_soc_reports(cell.clone(), &reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_faults::{FaultKind, FaultPlan, SLOW_CELL_BUDGET};
    use icicle_pmu::CounterArch;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec::new("unit")
            .workloads(["vvadd", "towers"])
            .cores([CoreSelect::Rocket])
            .archs([CounterArch::AddWires])
            .seeds([0])
    }

    #[test]
    fn soc_cell_is_byte_identical_across_engines() {
        let cell = CellSpec {
            // qsort's retired-instruction count is data-dependent, so
            // per-core seeding is observable in the per-core records.
            workload: "qsort".into(),
            core: CoreSelect::Soc(SocMix::DualRocket),
            arch: CounterArch::AddWires,
            seed: 0,
            repeat: 0,
            max_cycles: 1_000_000,
        };
        let lockstep = simulate_cell_with(&cell, None, Some(SocJobs::Lockstep)).unwrap();
        assert_eq!(lockstep.cores.len(), 2);
        // Top-level fields mirror core 0, so single-core consumers
        // (CSV, bench ledgers) keep working on soc cells.
        assert_eq!(lockstep.cycles, lockstep.cores[0].cycles);
        assert_eq!(lockstep.instret, lockstep.cores[0].instret);
        // Cores derive distinct data seeds, so their streams differ.
        assert_ne!(lockstep.cores[0].instret, lockstep.cores[1].instret);
        for jobs in [1, 2, 4] {
            let parallel = simulate_cell_with(&cell, None, Some(SocJobs::Parallel(jobs))).unwrap();
            assert_eq!(parallel, lockstep, "engine diverged at {jobs} jobs");
        }
    }

    #[test]
    fn soc_cell_runs_through_the_campaign_grid() {
        let spec = CampaignSpec::new("soc-unit")
            .workloads(["vvadd"])
            .cores([CoreSelect::Rocket, CoreSelect::Soc(SocMix::DualRocket)])
            .archs([CounterArch::AddWires])
            .seeds([0]);
        let report = run_campaign(&spec, &RunOptions::default());
        assert!(report.passed());
        assert_eq!(report.cells.len(), 2);
        let soc = report
            .cells
            .iter()
            .find(|c| c.cell.core.name() == "soc-2xrocket")
            .expect("soc cell present");
        assert_eq!(soc.cores.len(), 2);
        // The distilled record survives the canonical JSON round-trip
        // with its per-core breakdown intact.
        let back = CellResult::from_json(&soc.to_json()).unwrap();
        assert_eq!(&back, soc);
    }

    #[test]
    fn queue_drains_then_reports_closed() {
        let q = JobQueue::new();
        q.push(1);
        q.push(2);
        q.close();
        assert_eq!(q.submitted(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_wakes_blocked_workers_on_close() {
        let q = Arc::new(JobQueue::new());
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn queue_drains_bands_in_priority_order() {
        let q = JobQueue::new();
        q.push_with_priority(10, Priority::Low);
        q.push(20); // Normal
        q.push_with_priority(30, Priority::High);
        q.push_with_priority(31, Priority::High);
        q.push(21);
        q.close();
        assert_eq!(q.submitted(), 5);
        assert_eq!(q.queued(), 5);
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![30, 31, 20, 21, 10]);
    }

    #[test]
    fn priority_wire_names_round_trip() {
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::from_name(p.name()), Some(p));
        }
        assert_eq!(Priority::from_name("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn cancel_flag_skips_the_remaining_cells() {
        let spec = CampaignSpec::new("cancelled")
            .workloads(["vvadd", "towers", "qsort"])
            .cores([CoreSelect::Rocket])
            .archs([CounterArch::AddWires]);
        let flag = Arc::new(AtomicBool::new(true)); // cancelled before it starts
        let report = run_campaign(
            &spec,
            &RunOptions {
                jobs: 2,
                cache: None,
                cancel: Some(Arc::clone(&flag)),
                ..RunOptions::default()
            },
        );
        assert_eq!(report.stats.skipped, 3, "every cell becomes a skip");
        assert_eq!(report.stats.total(), 3, "no cell is lost");
        assert!(report.cells.is_empty());
    }

    #[test]
    fn unset_cancel_flag_changes_nothing() {
        let spec = tiny_spec();
        let flag = Arc::new(AtomicBool::new(false));
        let cancellable = run_campaign(
            &spec,
            &RunOptions {
                cache: None,
                cancel: Some(flag),
                ..RunOptions::default()
            },
        );
        let plain = run_campaign(
            &spec,
            &RunOptions {
                cache: None,
                ..RunOptions::default()
            },
        );
        assert_eq!(cancellable.to_json(), plain.to_json());
    }

    #[test]
    fn queue_cancel_returns_the_unstarted_jobs() {
        let q = JobQueue::new();
        for job in 0..5 {
            q.push(job);
        }
        assert_eq!(q.pop(), Some(0));
        let cancelled = q.cancel();
        assert_eq!(cancelled, vec![1, 2, 3, 4]);
        assert_eq!(q.pop(), None, "cancelled queue is closed");
        assert_eq!(q.submitted(), 5);
    }

    #[test]
    fn failed_cells_do_not_sink_the_campaign() {
        let spec = CampaignSpec::new("mixed")
            .workloads(["vvadd", "definitely-not-a-workload"])
            .cores([CoreSelect::Rocket])
            .archs([CounterArch::AddWires]);
        let report = run_campaign(&spec, &RunOptions::default());
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.stats.failed, 1);
        assert!(report.failures[0]
            .label
            .starts_with("definitely-not-a-workload"));
        assert_eq!(report.failures[0].kind, "unknown-workload");
        assert!(report.failures[0].error.contains("unknown workload"));
        assert_eq!(
            report.failures[0].attempts, 1,
            "a non-retryable failure is not retried"
        );
        assert!(!report.passed());
    }

    #[test]
    fn cache_hits_skip_simulation_and_flag_provenance() {
        let spec = tiny_spec();
        let cache = Arc::new(ResultCache::in_memory());
        let cold = run_campaign(
            &spec,
            &RunOptions {
                jobs: 2,
                cache: Some(Arc::clone(&cache)),
                ..RunOptions::default()
            },
        );
        assert_eq!(cold.stats.simulated, 2);
        assert_eq!(cold.stats.cached, 0);
        let warm = run_campaign(
            &spec,
            &RunOptions {
                jobs: 2,
                cache: Some(cache),
                ..RunOptions::default()
            },
        );
        assert_eq!(warm.stats.simulated, 0, "warm run must simulate nothing");
        assert_eq!(warm.stats.cached, 2);
        assert!(warm.cells.iter().all(|c| c.from_cache));
        // Identical aggregate output either way.
        assert_eq!(warm.to_json(), cold.to_json());
        assert_eq!(warm.to_csv(), cold.to_csv());
    }

    #[test]
    fn progress_callback_sees_every_cell() {
        let spec = tiny_spec();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen_in_cb = Arc::clone(&seen);
        let report = run_campaign(
            &spec,
            &RunOptions {
                jobs: 1,
                cache: None,
                progress: Some(Box::new(move |p: Progress| {
                    seen_in_cb.store(p.done(), Ordering::Relaxed);
                    assert_eq!(p.total, 2);
                })),
                ..RunOptions::default()
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(report.stats.total(), 2);
    }

    #[test]
    fn injected_panic_is_contained_to_its_cell() {
        let spec = tiny_spec();
        let plan = FaultPlan::new().with(FaultKind::PanicInCell, 0, true);
        let report = run_campaign(
            &spec,
            &RunOptions {
                cache: None,
                retries: 1,
                faults: Some(Arc::new(FaultInjector::new(plan))),
                ..RunOptions::default()
            },
        );
        assert_eq!(report.cells.len(), 1, "the other cell still completes");
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].kind, "panic");
        assert!(report.failures[0].error.contains("injected fault"));
        assert_eq!(report.failures[0].attempts, 2, "one retry was granted");
    }

    #[test]
    fn worker_panic_writes_a_postmortem_dump() {
        let spec = tiny_spec();
        let plan = FaultPlan::new().with(FaultKind::PanicInCell, 0, true);
        let dir = std::env::temp_dir().join(format!("icicle-campaign-pm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        obs::arm_flight_recorder(64);
        let trace = obs::TraceId::mint();
        let report = {
            let _ctx = obs::enter(obs::TraceContext::root(trace));
            run_campaign(
                &spec,
                &RunOptions {
                    cache: None,
                    retries: 0,
                    faults: Some(Arc::new(FaultInjector::new(plan))),
                    postmortem_dir: Some(dir.clone()),
                    ..RunOptions::default()
                },
            )
        };
        obs::disarm_flight_recorder();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].kind, "panic");
        let path = dir.join(format!("{}.jsonl", trace.to_hex()));
        let text = std::fs::read_to_string(&path).expect("post-mortem artifact written");
        let header = text.lines().next().unwrap();
        assert!(header.contains("\"reason\":\"worker_panic\""));
        assert!(header.contains(&trace.to_hex()));
        assert!(header.contains("injected fault"));
        assert!(
            text.contains("campaign.cell"),
            "the ring captured the failing cell's span"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_recover_on_retry() {
        let spec = tiny_spec();
        let plan = FaultPlan::new()
            .with(FaultKind::PanicInCell, 0, false)
            .with(FaultKind::SlowCell, 1, false);
        let faulted = run_campaign(
            &spec,
            &RunOptions {
                cache: None,
                retries: 1,
                faults: Some(Arc::new(FaultInjector::new(plan))),
                ..RunOptions::default()
            },
        );
        assert_eq!(faulted.cells.len(), 2, "both cells recover on retry");
        assert!(faulted.failures.is_empty());
        let retries: Vec<_> = faulted
            .incidents
            .iter()
            .filter(|i| i.kind == "retry")
            .collect();
        assert_eq!(retries.len(), 2);
        assert!(retries.iter().any(|i| i.detail.contains("(panic)")));
        assert!(retries.iter().any(|i| i.detail.contains("(timeout)")));
        // The recovered results match a clean run exactly.
        let clean = run_campaign(
            &spec,
            &RunOptions {
                cache: None,
                ..RunOptions::default()
            },
        );
        assert_eq!(faulted.cells, clean.cells);
    }

    #[test]
    fn slow_cells_trip_the_watchdog_as_typed_timeouts() {
        let spec = tiny_spec();
        let plan = FaultPlan::new().with(FaultKind::SlowCell, 0, true);
        let report = run_campaign(
            &spec,
            &RunOptions {
                cache: None,
                retries: 1,
                faults: Some(Arc::new(FaultInjector::new(plan))),
                ..RunOptions::default()
            },
        );
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].kind, "timeout");
        assert!(report.failures[0]
            .error
            .contains(&format!("{SLOW_CELL_BUDGET}-cycle budget")));
    }

    #[test]
    fn fail_fast_cancels_and_reports_skips() {
        let spec = CampaignSpec::new("fail-fast")
            .workloads(["definitely-not-a-workload", "vvadd", "towers"])
            .cores([CoreSelect::Rocket])
            .archs([CounterArch::AddWires]);
        let report = run_campaign(
            &spec,
            &RunOptions {
                jobs: 1,
                cache: None,
                keep_going: false,
                ..RunOptions::default()
            },
        );
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.skipped, 2, "unstarted cells become skips");
        assert_eq!(report.skipped.len(), 2);
        assert_eq!(report.stats.total(), 3, "no cell is lost");
        assert!(!report.passed());
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts_with_faults() {
        let spec = CampaignSpec::new("jobs-invariant")
            .workloads(["vvadd", "towers", "no-such-workload"])
            .cores([CoreSelect::Rocket])
            .archs([CounterArch::AddWires]);
        let plan = FaultPlan::new().with(FaultKind::PanicInCell, 0, true).with(
            FaultKind::SlowCell,
            1,
            false,
        );
        let run = |jobs: usize| {
            run_campaign(
                &spec,
                &RunOptions {
                    jobs,
                    cache: None,
                    retries: 1,
                    faults: Some(Arc::new(FaultInjector::new(plan.clone()))),
                    ..RunOptions::default()
                },
            )
        };
        let solo = run(1);
        let pooled = run(4);
        assert_eq!(solo.to_json(), pooled.to_json());
        assert_eq!(solo.to_csv(), pooled.to_csv());
        assert_eq!(solo.failures, pooled.failures);
        assert_eq!(solo.incidents, pooled.incidents);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let fp = Fingerprint(0x1234_5678_9abc_def0);
        assert_eq!(retry_backoff(fp, 1), retry_backoff(fp, 1));
        assert_ne!(retry_backoff(fp, 1), retry_backoff(fp, 2));
        for attempt in 1..20 {
            assert!(retry_backoff(fp, attempt) < 2048);
        }
    }
}
