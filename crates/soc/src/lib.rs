//! # icicle-soc
//!
//! A multi-core system-on-chip with a shared, bus-arbitrated L2 — this
//! reproduction's take on the paper's "performance characterization on
//! heterogeneous systems on Chipyard" future-work item (§VII).
//!
//! A [`SocBuilder`] assembles any mix of Rocket and BOOM cores, each
//! running its own workload over a private L1 but a *shared* L2
//! ([`SharedL2`]). Cross-core interference — capacity thrashing and bus
//! queueing — emerges in the TMA results exactly the way it would on a
//! real SoC: as growth in the victim core's Mem-Bound slots.
//!
//! Two execution engines produce **byte-identical** results:
//!
//! * [`Soc::run`] — the lockstep reference: every core steps one cycle
//!   in core order on the calling thread.
//! * [`Soc::run_parallel`] — conservative parallel discrete-event
//!   simulation: each core gets its own worker thread and a timestamped
//!   [`L2Port`] link to the shared L2; null messages carry per-core safe
//!   horizons (lookahead from the core's quiescent span, i.e. from the
//!   hit/miss latency of in-flight requests), and no request at cycle
//!   *t* is admitted until every other link has passed *t*. Counters,
//!   TMA reports, and canonical JSON are identical at any thread count.
//!
//! [`SharedL2`]: icicle_mem::SharedL2
//! [`L2Port`]: icicle_mem::L2Port
//!
//! ```
//! use icicle_soc::SocBuilder;
//! use icicle_rocket::RocketConfig;
//! use icicle_workloads::micro;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = micro::vvadd(256);
//! let b = micro::rsort(256);
//! let mut soc = SocBuilder::new()
//!     .rocket(RocketConfig::default(), &a)?
//!     .rocket(RocketConfig::default(), &b)?
//!     .build();
//! let reports = soc.run_parallel(10_000_000, 2)?;
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.report.cycles > 0));
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use icicle_boom::{Boom, BoomConfig};
use icicle_events::{EventCore, EventCounts, EventId};
use icicle_mem::{CacheConfig, L2Arbiter, L2Linked, L2Port, L2Waiter, MemoryHierarchy, SharedL2};
use icicle_perf::{Perf, PerfReport};
use icicle_pmu::{CounterArch, CsrFile, PmuError};
use icicle_rocket::{Rocket, RocketConfig};
use icicle_tma::{TlbCosts, TlbInput, TlbLevel, TmaInput, TmaModel};
use icicle_workloads::Workload;

/// Errors from SoC construction or simulation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SocError {
    /// A workload failed to execute architecturally.
    Workload(icicle_isa::IsaError),
    /// The SoC has no cores.
    Empty,
    /// One or more cores did not finish within the cycle budget; every
    /// stuck core's workload is named so multi-core budget failures are
    /// diagnosable in one pass.
    CycleBudget { cores: Vec<String>, budget: u64 },
    /// Counter programming or readback failed on a core's CSR file.
    Pmu(PmuError),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Workload(e) => write!(f, "workload failed: {e}"),
            SocError::Empty => write!(f, "soc has no cores"),
            SocError::CycleBudget { cores, budget } => {
                if cores.len() == 1 {
                    write!(f, "core {} exceeded the {budget}-cycle budget", cores[0])
                } else {
                    write!(
                        f,
                        "cores {} exceeded the {budget}-cycle budget",
                        cores.join(", ")
                    )
                }
            }
            SocError::Pmu(e) => write!(f, "pmu: {e}"),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Workload(e) => Some(e),
            SocError::Pmu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<icicle_isa::IsaError> for SocError {
    fn from(e: icicle_isa::IsaError) -> SocError {
        SocError::Workload(e)
    }
}

impl From<PmuError> for SocError {
    fn from(e: PmuError) -> SocError {
        SocError::Pmu(e)
    }
}

/// Everything the SoC engines need from a core model: event-driven
/// stepping, shared-L2 relinking, and the ability to move to a worker
/// thread.
pub trait SocEventCore: EventCore + L2Linked + Send {}

impl<T: EventCore + L2Linked + Send> SocEventCore for T {}

/// How an SoC run schedules its cores.
///
/// Like `SkipPolicy`, this is a pure *engine* knob: the PDES engine and
/// the lockstep reference produce bit-identical counters and reports, so
/// the choice never enters result fingerprints or caches.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SocJobs {
    /// The reference engine: one thread, every core stepped one cycle
    /// in core order.
    Lockstep,
    /// Conservative PDES: one worker thread per core, at most N cores
    /// stepping concurrently.
    Parallel(usize),
}

/// Process-wide override, set once by the CLI: 0 = unset, 1 = lockstep,
/// n+1 = parallel with n workers.
static GLOBAL_SOC_JOBS: AtomicU64 = AtomicU64::new(0);

impl SocJobs {
    /// Parses `lockstep` / `0` (reference) or a worker count.
    pub fn from_name(name: &str) -> Option<SocJobs> {
        let t = name.trim();
        if t.eq_ignore_ascii_case("lockstep") {
            return Some(SocJobs::Lockstep);
        }
        match t.parse::<u64>() {
            Ok(0) => Some(SocJobs::Lockstep),
            Ok(n) => Some(SocJobs::Parallel(n as usize)),
            Err(_) => None,
        }
    }

    /// The canonical spelling `from_name` round-trips.
    pub fn name(self) -> String {
        match self {
            SocJobs::Lockstep => "lockstep".to_string(),
            SocJobs::Parallel(n) => n.to_string(),
        }
    }

    /// Sets the process-wide engine choice (the CLI's `--soc-jobs`).
    pub fn set_global(jobs: SocJobs) {
        let encoded = match jobs {
            SocJobs::Lockstep => 1,
            SocJobs::Parallel(n) => (n as u64).saturating_add(1),
        };
        GLOBAL_SOC_JOBS.store(encoded, Ordering::Relaxed);
    }

    fn global() -> Option<SocJobs> {
        match GLOBAL_SOC_JOBS.load(Ordering::Relaxed) {
            0 => None,
            1 => Some(SocJobs::Lockstep),
            n => Some(SocJobs::Parallel((n - 1) as usize)),
        }
    }

    /// Resolves the engine: explicit request, then the process-wide
    /// `--soc-jobs`, then the `ICICLE_SOC_JOBS` environment variable,
    /// then the lockstep reference.
    pub fn resolve(explicit: Option<SocJobs>) -> SocJobs {
        explicit
            .or_else(SocJobs::global)
            .or_else(|| {
                std::env::var("ICICLE_SOC_JOBS")
                    .ok()
                    .and_then(|v| SocJobs::from_name(&v))
            })
            .unwrap_or(SocJobs::Lockstep)
    }
}

impl fmt::Display for SocJobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The named multi-core topologies the campaign/bench/serve layers can
/// run as grid cells: every core runs the cell's workload (with a
/// distinct derived seed per core) on the paper's shared 512 KiB L2.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SocMix {
    /// Two Rocket cores.
    DualRocket,
    /// A Rocket plus a medium BOOM (the heterogeneous pairing).
    RocketMediumBoom,
    /// Four Rocket cores.
    QuadRocket,
}

impl SocMix {
    /// Every mix, in canonical order.
    pub const ALL: [SocMix; 3] = [
        SocMix::DualRocket,
        SocMix::RocketMediumBoom,
        SocMix::QuadRocket,
    ];

    /// The stable name used in specs, labels, and reports.
    pub fn name(self) -> &'static str {
        match self {
            SocMix::DualRocket => "soc-2xrocket",
            SocMix::RocketMediumBoom => "soc-rocket+medium-boom",
            SocMix::QuadRocket => "soc-4xrocket",
        }
    }

    /// Parses [`SocMix::name`] back.
    pub fn from_name(name: &str) -> Option<SocMix> {
        SocMix::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Number of cores in the mix.
    pub fn num_cores(self) -> usize {
        match self {
            SocMix::DualRocket | SocMix::RocketMediumBoom => 2,
            SocMix::QuadRocket => 4,
        }
    }

    /// Builds the SoC with one workload per core (`workloads.len()`
    /// must equal [`SocMix::num_cores`]).
    ///
    /// # Errors
    ///
    /// Propagates architectural execution and counter-programming
    /// failures from the per-core builders.
    pub fn build(self, workloads: &[Workload]) -> Result<Soc, SocError> {
        assert_eq!(
            workloads.len(),
            self.num_cores(),
            "{} takes exactly {} workloads",
            self.name(),
            self.num_cores()
        );
        let mut b = SocBuilder::new();
        match self {
            SocMix::DualRocket | SocMix::QuadRocket => {
                for w in workloads {
                    b = b.rocket(RocketConfig::default(), w)?;
                }
            }
            SocMix::RocketMediumBoom => {
                b = b.rocket(RocketConfig::default(), &workloads[0])?;
                b = b.boom(BoomConfig::medium(), &workloads[1])?;
            }
        }
        Ok(b.build())
    }
}

impl fmt::Display for SocMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

struct SocCore {
    core: Box<dyn SocEventCore>,
    workload_name: String,
    counts: EventCounts,
    csr: CsrFile,
    slot_map: Vec<(usize, icicle_events::EventId)>,
    finished_at: Option<u64>,
}

/// Per-core results of an SoC run.
#[derive(Clone, Debug)]
pub struct SocReport {
    /// The workload this core ran.
    pub workload: String,
    /// The core's standard perf report. Each core carries its own CSR
    /// file programmed with add-wires counters, so `hw_counts` is a true
    /// hardware view and `perfect_counts` the validation view.
    pub report: PerfReport,
}

/// Builds a [`Soc`] core by core.
pub struct SocBuilder {
    shared_l2: SharedL2,
    cores: Vec<SocCore>,
}

impl Default for SocBuilder {
    fn default() -> SocBuilder {
        SocBuilder::new()
    }
}

impl SocBuilder {
    /// Starts an SoC with the paper's 512 KiB shared L2 and a 2-cycle
    /// bus occupancy per access.
    pub fn new() -> SocBuilder {
        SocBuilder::with_l2(CacheConfig::l2_default(), 2)
    }

    /// Starts an SoC with an explicit shared-L2 geometry and bus
    /// occupancy.
    pub fn with_l2(l2: CacheConfig, bus_occupancy: u64) -> SocBuilder {
        SocBuilder {
            shared_l2: SharedL2::new(l2, bus_occupancy),
            cores: Vec::new(),
        }
    }

    /// A handle to the shared L2 (for inspecting contention afterwards).
    pub fn shared_l2(&self) -> SharedL2 {
        self.shared_l2.clone()
    }

    /// Each core gets its own physical address space (see
    /// [`MemoryHierarchy::with_address_salt`]).
    fn next_salt(&self) -> u64 {
        (self.cores.len() as u64 + 1) << 40
    }

    /// Adds a Rocket core running `workload`.
    ///
    /// # Errors
    ///
    /// Propagates architectural execution and counter-programming
    /// failures.
    pub fn rocket(
        mut self,
        config: RocketConfig,
        workload: &Workload,
    ) -> Result<SocBuilder, SocError> {
        let stream = workload.execute()?;
        let mem = MemoryHierarchy::with_shared_l2(config.memory, self.shared_l2.clone())
            .with_address_salt(self.next_salt());
        let core = Rocket::with_memory(config, stream, mem);
        let (csr, slot_map) = Perf::program_all_events(&core, CounterArch::AddWires)?;
        self.cores.push(SocCore {
            core: Box::new(core),
            workload_name: workload.name().to_string(),
            counts: EventCounts::new(),
            csr,
            slot_map,
            finished_at: None,
        });
        Ok(self)
    }

    /// Adds a BOOM core running `workload`.
    ///
    /// # Errors
    ///
    /// Propagates architectural execution and counter-programming
    /// failures.
    pub fn boom(mut self, config: BoomConfig, workload: &Workload) -> Result<SocBuilder, SocError> {
        let stream = workload.execute()?;
        let mem = MemoryHierarchy::with_shared_l2(config.memory, self.shared_l2.clone())
            .with_address_salt(self.next_salt());
        let core = Boom::with_memory(config, stream, workload.program_arc(), mem);
        let (csr, slot_map) = Perf::program_all_events(&core, CounterArch::AddWires)?;
        self.cores.push(SocCore {
            core: Box::new(core),
            workload_name: workload.name().to_string(),
            counts: EventCounts::new(),
            csr,
            slot_map,
            finished_at: None,
        });
        Ok(self)
    }

    /// Finalizes the SoC.
    pub fn build(self) -> Soc {
        Soc {
            shared_l2: self.shared_l2,
            cores: self.cores,
            cycle: 0,
        }
    }
}

/// A counting semaphore bounding how many cores step concurrently.
///
/// Worker threads hold a permit while stepping. A core blocked inside
/// [`L2Port::access`] hands its permit back (`pause`) so the core whose
/// request is globally next can always get scheduled — without this, a
/// 4-core SoC at `--soc-jobs 2` could park both permits on waiting
/// cores and deadlock.
struct StepGate {
    permits: Mutex<usize>,
    freed: Condvar,
}

struct StepPermit<'a> {
    gate: &'a StepGate,
}

impl StepGate {
    fn new(permits: usize) -> StepGate {
        StepGate {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    fn acquire_raw(&self) {
        let mut p = self.permits.lock().unwrap();
        while *p == 0 {
            p = self.freed.wait(p).unwrap();
        }
        *p -= 1;
    }

    fn release_raw(&self) {
        *self.permits.lock().unwrap() += 1;
        self.freed.notify_one();
    }

    fn acquire(&self) -> StepPermit<'_> {
        self.acquire_raw();
        StepPermit { gate: self }
    }
}

impl Drop for StepPermit<'_> {
    fn drop(&mut self) {
        self.gate.release_raw();
    }
}

impl L2Waiter for StepGate {
    fn pause(&self) {
        self.release_raw();
    }

    fn resume(&self) {
        self.acquire_raw();
    }
}

/// One core's worker loop: publish a null message (the safe horizon,
/// extended by the core's quiescent span), take a step permit, step one
/// cycle. Stops at workload completion or the cycle budget.
fn drive_core(c: &mut SocCore, port: &L2Port, gate: &StepGate, max_cycles: u64) {
    let mut steps = 0u64;
    while c.finished_at.is_none() {
        if steps >= max_cycles {
            break;
        }
        let cycle = c.core.cycle();
        // The quiescent-span contract ("the next n steps retire nothing
        // and mutate nothing but the cycle counter") implies no L2
        // traffic before `cycle + quiet`, so the span is sound lookahead
        // — a core sleeping out an L2 miss promises silence for the
        // remaining miss latency. `L2Port::access` asserts the promise.
        let quiet = c.core.time_until_next_event().unwrap_or(0);
        port.advance(cycle.saturating_add(quiet));
        let permit = gate.acquire();
        let v = c.core.step();
        c.csr.tick(v);
        c.counts.observe(v);
        drop(permit);
        if c.core.is_done() {
            c.finished_at = Some(c.core.cycle());
        }
        steps += 1;
    }
}

/// A running multi-core system.
pub struct Soc {
    shared_l2: SharedL2,
    cores: Vec<SocCore>,
    cycle: u64,
}

impl Soc {
    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The shared L2 handle (contention statistics).
    pub fn shared_l2(&self) -> &SharedL2 {
        &self.shared_l2
    }

    /// Steps every unfinished core one cycle, in core order.
    pub fn step(&mut self) {
        for c in &mut self.cores {
            if c.finished_at.is_some() {
                continue;
            }
            let v = c.core.step();
            c.csr.tick(v);
            c.counts.observe(v);
            if c.core.is_done() {
                c.finished_at = Some(c.core.cycle());
            }
        }
        self.cycle += 1;
    }

    /// Whether every core has retired its workload.
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(|c| c.finished_at.is_some())
    }

    /// Runs until every core finishes — the single-threaded lockstep
    /// reference engine.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Empty`] for a core-less SoC and
    /// [`SocError::CycleBudget`] naming every stuck core if any fails
    /// to finish in `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<Vec<SocReport>, SocError> {
        if self.cores.is_empty() {
            return Err(SocError::Empty);
        }
        while !self.is_done() {
            if self.cycle >= max_cycles {
                return Err(self.budget_error(max_cycles));
            }
            self.step();
        }
        self.reports()
    }

    /// Runs until every core finishes, with one worker thread per core
    /// and at most `jobs` cores stepping concurrently — the conservative
    /// PDES engine. Counters and reports are byte-identical to
    /// [`Soc::run`] at any `jobs`.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Empty`] for a core-less SoC and
    /// [`SocError::CycleBudget`] naming every stuck core if any fails
    /// to finish in `max_cycles`.
    pub fn run_parallel(
        &mut self,
        max_cycles: u64,
        jobs: usize,
    ) -> Result<Vec<SocReport>, SocError> {
        if self.cores.is_empty() {
            return Err(SocError::Empty);
        }
        let gate = Arc::new(StepGate::new(jobs.max(1).min(self.cores.len())));
        let ports = L2Arbiter::link(self.shared_l2.clone(), self.cores.len());
        // Explicit trace handoff: captured here on the spawning thread,
        // entered by each core worker, so core-thread records stay
        // stamped with the enclosing job's trace.
        let trace = icicle_obs::handoff();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .cores
                .iter_mut()
                .zip(ports)
                .map(|(c, port)| {
                    let gate = Arc::clone(&gate);
                    s.spawn(move || {
                        let _trace = trace.map(icicle_obs::enter);
                        let workload = c.workload_name.clone();
                        let index = port.index();
                        // Debug-level so the Info-level span tree stays
                        // byte-identical to the lockstep engine, which
                        // interleaves cores and cannot emit per-core
                        // spans at all.
                        let _drive = icicle_obs::span_with(
                            icicle_obs::Level::Debug,
                            "soc.core.drive",
                            || vec![("core", index.into()), ("workload", workload.into())],
                        );
                        let waiter: Arc<dyn L2Waiter> = gate.clone();
                        c.core.attach_l2_port(port.clone().with_waiter(waiter));
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            drive_core(c, &port, &gate, max_cycles)
                        }));
                        // Always park the horizon at infinity so a panic
                        // on one core cannot wedge its neighbours.
                        port.finish();
                        c.core.detach_l2_port();
                        let stats = port.stats();
                        icicle_obs::record_l2_core(
                            index,
                            stats.null_messages,
                            stats.stall_waits,
                            stats.stall_spins,
                            stats.stall_us,
                        );
                        if let Err(payload) = outcome {
                            resume_unwind(payload);
                        }
                    })
                })
                .collect();
            let mut panicked = None;
            for h in handles {
                if let Err(payload) = h.join() {
                    panicked.get_or_insert(payload);
                }
            }
            if let Some(payload) = panicked {
                resume_unwind(payload);
            }
        });
        self.cycle = self
            .cores
            .iter()
            .map(|c| c.core.cycle())
            .max()
            .unwrap_or(self.cycle)
            .max(self.cycle);
        if self.cores.iter().any(|c| c.finished_at.is_none()) {
            return Err(self.budget_error(max_cycles));
        }
        self.reports()
    }

    /// Runs with the engine [`SocJobs::resolve`] picks from the
    /// process-wide `--soc-jobs` / `ICICLE_SOC_JOBS` configuration.
    ///
    /// # Errors
    ///
    /// As [`Soc::run`] / [`Soc::run_parallel`].
    pub fn run_auto(&mut self, max_cycles: u64) -> Result<Vec<SocReport>, SocError> {
        self.run_with(max_cycles, SocJobs::resolve(None))
    }

    /// Runs with an explicit engine choice.
    ///
    /// # Errors
    ///
    /// As [`Soc::run`] / [`Soc::run_parallel`].
    pub fn run_with(&mut self, max_cycles: u64, jobs: SocJobs) -> Result<Vec<SocReport>, SocError> {
        match jobs {
            SocJobs::Lockstep => self.run(max_cycles),
            SocJobs::Parallel(n) => self.run_parallel(max_cycles, n),
        }
    }

    /// Names every core still unfinished at the budget.
    fn budget_error(&self, budget: u64) -> SocError {
        SocError::CycleBudget {
            cores: self
                .cores
                .iter()
                .filter(|c| c.finished_at.is_none())
                .map(|c| c.workload_name.clone())
                .collect(),
            budget,
        }
    }

    fn reports(&self) -> Result<Vec<SocReport>, SocError> {
        let mut reports = Vec::with_capacity(self.cores.len());
        for (index, c) in self.cores.iter().enumerate() {
            let cycles = c.finished_at.expect("all finished");
            // Read this core's own CSR file back.
            let mut hw = EventCounts::new();
            hw.set(EventId::Cycles, c.csr.mcycle().min(cycles));
            hw.set(EventId::InstrRetired, c.csr.minstret());
            for (slot, event) in &c.slot_map {
                hw.set(*event, c.csr.read(*slot)?);
            }
            let model = if c.core.commit_width() == 1 {
                TmaModel::rocket()
            } else {
                TmaModel::boom(c.core.commit_width())
            };
            let tma = model.analyze(&TmaInput::from_counts(&hw));
            let tlb = TlbLevel::analyze(
                &tma,
                &TlbInput {
                    itlb_misses: hw.get(EventId::ITlbMiss),
                    dtlb_misses: hw.get(EventId::DTlbMiss),
                    l2_tlb_misses: hw.get(EventId::L2TlbMiss),
                },
                &TlbCosts::default(),
                cycles,
                model.commit_width,
            );
            // Both engines call `reports` identically on the calling
            // thread with deterministic values, so the Info-level tree
            // stays byte-identical across lockstep and parallel runs.
            icicle_obs::event_with(icicle_obs::Level::Info, "soc.core", || {
                vec![
                    ("core", index.into()),
                    ("name", c.core.name().into()),
                    ("workload", c.workload_name.clone().into()),
                    ("cycles", cycles.into()),
                    ("instret", hw.get(EventId::InstrRetired).into()),
                ]
            });
            reports.push(SocReport {
                workload: c.workload_name.clone(),
                report: PerfReport {
                    core_name: c.core.name().to_string(),
                    cycles,
                    instret: hw.get(EventId::InstrRetired),
                    hw_counts: hw,
                    perfect_counts: c.counts.clone(),
                    tma,
                    tlb,
                    trace: None,
                    lanes: Vec::new(),
                },
            });
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_workloads::{micro, spec};

    #[test]
    fn empty_soc_is_an_error() {
        let mut soc = SocBuilder::new().build();
        assert!(matches!(soc.run(1000), Err(SocError::Empty)));
        let mut soc = SocBuilder::new().build();
        assert!(matches!(soc.run_parallel(1000, 2), Err(SocError::Empty)));
    }

    #[test]
    fn two_rockets_both_finish() {
        let a = micro::vvadd(256);
        let b = micro::rsort(256);
        let mut soc = SocBuilder::new()
            .rocket(RocketConfig::default(), &a)
            .unwrap()
            .rocket(RocketConfig::default(), &b)
            .unwrap()
            .build();
        let reports = soc.run(5_000_000).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].workload, "vvadd");
        assert!(reports.iter().all(|r| r.report.instret > 0));
        assert!(reports
            .iter()
            .all(|r| (r.report.tma.top.total() - 1.0).abs() < 1e-9));
    }

    #[test]
    fn heterogeneous_mix_runs() {
        let a = micro::mergesort(256);
        let b = micro::qsort(256);
        let mut soc = SocBuilder::new()
            .rocket(RocketConfig::default(), &a)
            .unwrap()
            .boom(BoomConfig::large(), &b)
            .unwrap()
            .build();
        let reports = soc.run(5_000_000).unwrap();
        assert_eq!(reports[0].report.core_name, "rocket");
        assert_eq!(reports[1].report.core_name, "large-boom");
    }

    #[test]
    fn l2_thrasher_slows_its_neighbour() {
        // Victim: a 256 KiB chase (4096 cache blocks — half the L2's
        // lines, 8x the L1D's) walked several times, so most accesses
        // are L2 hits it depends on keeping resident.
        let victim = || spec::mcf_sized(1 << 15, 20_000);
        // Aggressor: a 1 MiB cold chase that evicts L2 lines the whole
        // time the victim runs.
        let aggressor = spec::mcf_sized(1 << 17, 20_000);

        let mut solo = SocBuilder::new()
            .boom(BoomConfig::large(), &victim())
            .unwrap()
            .build();
        let solo_cycles = solo.run(50_000_000).unwrap()[0].report.cycles;

        let mut contended = SocBuilder::new()
            .boom(BoomConfig::large(), &victim())
            .unwrap()
            .boom(BoomConfig::large(), &aggressor)
            .unwrap()
            .build();
        let reports = contended.run(50_000_000).unwrap();
        let with_neighbour = reports[0].report.cycles;
        // The aggressor evicts at DRAM-fill rate (one block per ~100
        // cycles), so the interference here is a few percent — clearly
        // measurable and strictly positive.
        assert!(
            with_neighbour > solo_cycles + solo_cycles / 40,
            "expected >2.5% interference: solo {solo_cycles}, contended {with_neighbour}"
        );
        // The interference shows up where TMA says it should.
        assert!(reports[0].report.tma.backend.mem_bound > 0.3);
        assert!(contended.shared_l2().contention_cycles() > 0);
    }

    #[test]
    fn cycle_budget_error_names_every_stuck_core() {
        let a = micro::mergesort(1 << 10);
        let b = micro::qsort(1 << 10);
        let mut soc = SocBuilder::new()
            .rocket(RocketConfig::default(), &a)
            .unwrap()
            .rocket(RocketConfig::default(), &b)
            .unwrap()
            .build();
        match soc.run(100) {
            Err(SocError::CycleBudget { cores, budget }) => {
                assert_eq!(cores, vec!["mergesort".to_string(), "qsort".to_string()]);
                assert_eq!(budget, 100);
            }
            other => panic!("expected a budget error, got {other:?}"),
        }

        // The parallel engine reports the same stuck set.
        let mut soc = SocBuilder::new()
            .rocket(RocketConfig::default(), &a)
            .unwrap()
            .rocket(RocketConfig::default(), &b)
            .unwrap()
            .build();
        match soc.run_parallel(100, 2) {
            Err(SocError::CycleBudget { cores, budget }) => {
                assert_eq!(cores, vec!["mergesort".to_string(), "qsort".to_string()]);
                assert_eq!(budget, 100);
            }
            other => panic!("expected a budget error, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            SocBuilder::new()
                .rocket(
                    RocketConfig::default(),
                    &icicle_workloads::riscv_tests::median(512),
                )
                .unwrap()
                .boom(BoomConfig::medium(), &micro::vvadd(512))
                .unwrap()
                .build()
        };
        let a = build().run(5_000_000).unwrap();
        let b = build().run(5_000_000).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report.cycles, y.report.cycles);
            assert_eq!(x.report.instret, y.report.instret);
        }
    }

    /// Every observable of two reports must agree exactly — cycles,
    /// instret, the full hardware and perfect counter sets, and the
    /// derived TMA fractions (bit-wise, via to_bits).
    fn assert_reports_identical(a: &[SocReport], b: &[SocReport], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: core count");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.workload, y.workload, "{what}: core {i} workload");
            let (rx, ry) = (&x.report, &y.report);
            assert_eq!(rx.cycles, ry.cycles, "{what}: core {i} cycles");
            assert_eq!(rx.instret, ry.instret, "{what}: core {i} instret");
            for e in EventId::ALL {
                assert_eq!(
                    rx.hw_counts.get(e),
                    ry.hw_counts.get(e),
                    "{what}: core {i} hw {}",
                    e.name()
                );
                assert_eq!(
                    rx.perfect_counts.get(e),
                    ry.perfect_counts.get(e),
                    "{what}: core {i} perfect {}",
                    e.name()
                );
            }
            assert_eq!(
                rx.tma.top.total().to_bits(),
                ry.tma.top.total().to_bits(),
                "{what}: core {i} tma total"
            );
            assert_eq!(
                rx.tma.backend.mem_bound.to_bits(),
                ry.tma.backend.mem_bound.to_bits(),
                "{what}: core {i} mem-bound"
            );
        }
    }

    #[test]
    fn parallel_engine_matches_lockstep_at_every_thread_count() {
        let build = || {
            SocBuilder::new()
                .rocket(RocketConfig::default(), &micro::mergesort(256))
                .unwrap()
                .boom(BoomConfig::medium(), &micro::vvadd(512))
                .unwrap()
                .rocket(RocketConfig::default(), &micro::qsort(256))
                .unwrap()
                .build()
        };
        let reference = build().run(5_000_000).unwrap();
        for jobs in [1, 2, 4, 8] {
            let parallel = build().run_parallel(5_000_000, jobs).unwrap();
            assert_reports_identical(
                &reference,
                &parallel,
                &format!("lockstep vs parallel({jobs})"),
            );
        }
    }

    #[test]
    fn parallel_engine_matches_lockstep_under_l2_contention() {
        // Two thrashers sharing the L2: heavy bus queueing and capacity
        // eviction, so any ordering divergence between the engines shows
        // up immediately in the contention-dependent latencies.
        let build = || {
            SocBuilder::new()
                .boom(BoomConfig::medium(), &spec::mcf_sized(1 << 14, 4_000))
                .unwrap()
                .boom(BoomConfig::medium(), &spec::mcf_sized(1 << 14, 4_000))
                .unwrap()
                .build()
        };
        let mut lockstep = build();
        let reference = lockstep.run(50_000_000).unwrap();
        for jobs in [1, 2] {
            let mut soc = build();
            let parallel = soc.run_parallel(50_000_000, jobs).unwrap();
            assert_reports_identical(&reference, &parallel, &format!("contended jobs={jobs}"));
            assert_eq!(
                lockstep.shared_l2().contention_cycles(),
                soc.shared_l2().contention_cycles(),
                "shared-L2 contention tally must match at jobs={jobs}"
            );
            assert_eq!(
                lockstep.shared_l2().accesses(),
                soc.shared_l2().accesses(),
                "shared-L2 access tally must match at jobs={jobs}"
            );
        }
    }

    #[test]
    fn soc_mix_builds_and_runs_each_named_topology() {
        for mix in SocMix::ALL {
            assert_eq!(SocMix::from_name(mix.name()), Some(mix));
            let workloads: Vec<_> = (0..mix.num_cores())
                .map(|i| micro::vvadd(64 + 16 * i as u64))
                .collect();
            let mut soc = mix.build(&workloads).unwrap();
            assert_eq!(soc.num_cores(), mix.num_cores());
            let reports = soc.run_auto(10_000_000).unwrap();
            assert!(reports.iter().all(|r| r.report.instret > 0));
        }
        assert_eq!(SocMix::from_name("soc-frob"), None);
    }

    #[test]
    fn soc_jobs_parses_and_round_trips() {
        assert_eq!(SocJobs::from_name("lockstep"), Some(SocJobs::Lockstep));
        assert_eq!(SocJobs::from_name("0"), Some(SocJobs::Lockstep));
        assert_eq!(SocJobs::from_name("4"), Some(SocJobs::Parallel(4)));
        assert_eq!(SocJobs::from_name("frob"), None);
        for j in [
            SocJobs::Lockstep,
            SocJobs::Parallel(1),
            SocJobs::Parallel(8),
        ] {
            assert_eq!(SocJobs::from_name(&j.name()), Some(j));
        }
        // Unset global, no env: the reference engine.
        assert_eq!(SocJobs::resolve(None), SocJobs::Lockstep);
        assert_eq!(
            SocJobs::resolve(Some(SocJobs::Parallel(2))),
            SocJobs::Parallel(2)
        );
    }
}
