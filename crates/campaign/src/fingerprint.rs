//! Content-addressed job identity.
//!
//! Every cell of a campaign grid gets a stable 64-bit fingerprint of
//! everything that can change its result: the workload name, the core,
//! the counter architecture, the data seed, the repeat index, the cycle
//! budget, and a cache-format version. The fingerprint is the key of
//! both the in-memory and the on-disk result cache, so re-running a
//! campaign re-simulates only cells whose identity actually changed.

use std::fmt;

use crate::spec::CellSpec;

/// Bump when [`crate::report::CellResult`] serialization or simulation
/// semantics change incompatibly; old cache entries then miss instead of
/// resurfacing stale data.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// A stable 64-bit identity of one campaign cell.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// The 16-hex-digit form used for cache file names.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the [`Fingerprint::hex`] form.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// FNV-1a over a byte stream.
#[derive(Copy, Clone, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a length-prefixed field (prevents `ab|c` / `a|bc`
    /// collisions between adjacent fields).
    pub fn field(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// The fingerprint of one cell.
pub fn fingerprint(cell: &CellSpec) -> Fingerprint {
    let mut h = Fnv1a::default();
    h.field(&CACHE_FORMAT_VERSION.to_le_bytes());
    h.field(cell.workload.as_bytes());
    h.field(cell.core.name().as_bytes());
    h.field(cell.arch.name().as_bytes());
    h.field(&cell.seed.to_le_bytes());
    h.field(&cell.repeat.to_le_bytes());
    h.field(&cell.max_cycles.to_le_bytes());
    Fingerprint(h.finish())
}

/// SplitMix64 — derives the per-job RNG stream from a cell's identity.
///
/// Jobs draw their workload-data seed from this, so a cell's inputs are
/// a pure function of the cell spec: byte-identical results no matter
/// how many worker threads run the campaign or in which order the queue
/// drains.
pub fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The effective workload-data seed for a cell.
///
/// Seed 0 with repeat 0 is the canonical dataset (so a one-seed campaign
/// reproduces `icicle-tma tma` exactly); anything else derives a
/// distinct, deterministic stream per (seed, repeat).
pub fn data_seed(cell: &CellSpec) -> u64 {
    if cell.seed == 0 && cell.repeat == 0 {
        0
    } else {
        let mixed = mix_seed(cell.seed, u64::from(cell.repeat));
        // 0 means "canonical" — remap the (astronomically unlikely)
        // collision instead of silently aliasing it.
        if mixed == 0 {
            1
        } else {
            mixed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampaignSpec, CoreSelect};
    use icicle_pmu::CounterArch;

    fn cell() -> CellSpec {
        CellSpec {
            workload: "qsort".into(),
            core: CoreSelect::Rocket,
            arch: CounterArch::AddWires,
            seed: 3,
            repeat: 1,
            max_cycles: 1_000_000,
        }
    }

    #[test]
    fn identical_cells_collide_and_different_cells_do_not() {
        let base = cell();
        assert_eq!(fingerprint(&base), fingerprint(&base.clone()));
        let variants = [
            CellSpec {
                workload: "rsort".into(),
                ..base.clone()
            },
            CellSpec {
                core: CoreSelect::Boom(icicle_boom::BoomSize::Large),
                ..base.clone()
            },
            CellSpec {
                arch: CounterArch::Stock,
                ..base.clone()
            },
            CellSpec {
                seed: 4,
                ..base.clone()
            },
            CellSpec {
                repeat: 0,
                ..base.clone()
            },
            CellSpec {
                max_cycles: 2_000_000,
                ..base.clone()
            },
        ];
        let mut fps: Vec<_> = variants.iter().map(fingerprint).collect();
        fps.push(fingerprint(&base));
        let total = fps.len();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), total, "fingerprint collision between variants");
    }

    #[test]
    fn hex_round_trips() {
        let fp = fingerprint(&cell());
        assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
    }

    #[test]
    fn whole_grid_is_collision_free() {
        let spec = CampaignSpec::new("grid")
            .workloads(["qsort", "rsort", "mergesort", "vvadd"])
            .cores(CoreSelect::all())
            .archs(CounterArch::ALL)
            .seeds([0, 1, 2, 3])
            .repeats(3);
        let mut fps: Vec<_> = spec.cells().iter().map(fingerprint).collect();
        let total = fps.len();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), total);
    }

    #[test]
    fn data_seed_is_canonical_only_for_seed0_repeat0() {
        let mut c = cell();
        c.seed = 0;
        c.repeat = 0;
        assert_eq!(data_seed(&c), 0);
        c.repeat = 1;
        assert_ne!(data_seed(&c), 0);
        c.seed = 5;
        c.repeat = 0;
        assert_ne!(data_seed(&c), 0);
        // Deterministic.
        assert_eq!(data_seed(&c), data_seed(&c));
    }
}
