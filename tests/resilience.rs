//! The resilience layer, end-to-end: supervised workers surviving
//! poisoned locks and panicking cells, deterministic retries, and
//! checkpoint/resume after a mid-campaign kill.
//!
//! Faults are injected through the seed-pure [`icicle_faults`] plans —
//! the same machinery `icicle-tma faults` drives — so every scenario
//! here is reproducible byte-for-byte.

use std::path::PathBuf;
use std::sync::Arc;

use icicle::campaign::sync::lock_unpoisoned;
use icicle::campaign::{
    fingerprint, run_campaign, runner::poison_for_fault, CampaignSpec, CheckpointLog, CoreSelect,
    ResultCache, RunOptions,
};
use icicle::faults::{FaultInjector, FaultKind, FaultPlan};
use icicle::prelude::CounterArch;

/// 2 workloads × 1 core × 1 arch × 2 seeds = 4 cells, small enough to
/// simulate repeatedly.
fn grid() -> CampaignSpec {
    CampaignSpec::new("resilience")
        .workloads(["vvadd", "towers"])
        .cores([CoreSelect::Rocket])
        .archs([CounterArch::AddWires])
        .seeds([0, 1])
}

fn faulted_options(plan: FaultPlan) -> RunOptions {
    RunOptions {
        jobs: 2,
        faults: Some(Arc::new(FaultInjector::new(plan))),
        ..RunOptions::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icicle-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_poisoned_slot_lock_is_recovered_not_fatal() {
    // The primitive itself first: a mutex poisoned by a panicking
    // thread still yields its data through the recovering lock.
    let slot = std::sync::Mutex::new(7u64);
    poison_for_fault(&slot);
    assert!(slot.is_poisoned());
    assert_eq!(*lock_unpoisoned(&slot), 7);

    // Then the whole campaign: a poisoned-lock fault on cell 1 is
    // recorded as a recovered incident and costs nothing.
    let spec = grid();
    let plan = FaultPlan::new().with(FaultKind::PoisonedLock, 1, false);
    let report = run_campaign(&spec, &faulted_options(plan));
    assert!(report.passed(), "{report}");
    assert_eq!(report.cells.len(), spec.cells().len());
    assert!(report.incidents.iter().any(|i| i.kind == "poisoned-lock"));
}

#[test]
fn a_panicking_cell_is_isolated_and_typed() {
    let spec = grid();
    let plan = FaultPlan::new().with(FaultKind::PanicInCell, 0, true);
    let report = run_campaign(&spec, &faulted_options(plan));

    // One typed failure after the full retry budget; every other cell
    // completes untouched.
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.kind, "panic");
    assert_eq!(failure.attempts, 2, "default retry budget is 1 retry");
    assert!(failure.error.contains("panicked"));
    assert_eq!(report.cells.len(), spec.cells().len() - 1);
    assert!(report.skipped.is_empty(), "keep-going never skips");
}

#[test]
fn transient_retries_are_deterministic_and_recover() {
    let spec = grid();
    let plan = FaultPlan::new()
        .with(FaultKind::PanicInCell, 2, false)
        .with(FaultKind::SlowCell, 3, false);
    let first = run_campaign(&spec, &faulted_options(plan.clone()));
    let second = run_campaign(&spec, &faulted_options(plan));
    let clean = run_campaign(&spec, &RunOptions::with_jobs(1));

    // Transient faults fire only on attempt 1: the retry recovers and
    // the results match a fault-free run exactly — twice over.
    assert!(first.passed(), "{first}");
    assert_eq!(first.to_json(), second.to_json());
    assert_eq!(first.cells, clean.cells);
    let retries: Vec<_> = first
        .incidents
        .iter()
        .filter(|i| i.kind == "retry")
        .collect();
    assert_eq!(retries.len(), 2, "one retry incident per faulted cell");
}

#[test]
fn resume_reruns_only_the_unfinished_cells() {
    let spec = grid();
    let dir = scratch_dir("resume");
    let checkpoint_path = dir.join("resilience.checkpoint");

    // First run: a persistent panic kills cell 0 — standing in for a
    // campaign killed partway through, with the other three cells
    // already checkpointed next to the disk cache.
    let interrupted = run_campaign(
        &spec,
        &RunOptions {
            jobs: 2,
            cache: Some(Arc::new(ResultCache::with_disk(&dir).unwrap())),
            checkpoint: Some(Arc::new(CheckpointLog::open(&checkpoint_path).unwrap())),
            faults: Some(Arc::new(FaultInjector::new(FaultPlan::new().with(
                FaultKind::PanicInCell,
                0,
                true,
            )))),
            ..RunOptions::default()
        },
    );
    assert_eq!(interrupted.cells.len(), 3);
    assert_eq!(interrupted.failures.len(), 1);

    // Second run, resumed in a "new process": fresh cache handle,
    // reopened checkpoint, no faults. Only the dead cell simulates.
    let resumed = run_campaign(
        &spec,
        &RunOptions {
            jobs: 2,
            cache: Some(Arc::new(ResultCache::with_disk(&dir).unwrap())),
            checkpoint: Some(Arc::new(CheckpointLog::open(&checkpoint_path).unwrap())),
            resume: true,
            ..RunOptions::default()
        },
    );
    assert!(resumed.passed(), "{resumed}");
    assert_eq!(resumed.stats.resumed, 3);
    assert_eq!(resumed.stats.simulated, 1);
    let clean = run_campaign(&spec, &RunOptions::with_jobs(1));
    assert_eq!(resumed.to_json(), clean.to_json());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_quarantined_on_resume() {
    let spec = grid();
    let dir = scratch_dir("quarantine");
    let checkpoint_path = dir.join("resilience.checkpoint");

    // A clean checkpointed run, then fault injection corrupts one
    // just-written disk entry (what `corrupt-cache-entry` simulates).
    let first = run_campaign(
        &spec,
        &RunOptions {
            jobs: 1,
            cache: Some(Arc::new(ResultCache::with_disk(&dir).unwrap())),
            checkpoint: Some(Arc::new(CheckpointLog::open(&checkpoint_path).unwrap())),
            faults: Some(Arc::new(FaultInjector::new(FaultPlan::new().with(
                FaultKind::CorruptCacheEntry,
                2,
                true,
            )))),
            ..RunOptions::default()
        },
    );
    assert!(first.passed(), "corruption lands on disk, not in the run");

    // Resume: the corrupt entry is quarantined, the checkpointed-but-
    // missing cell re-simulates, and the run still converges.
    let cache = Arc::new(ResultCache::with_disk(&dir).unwrap());
    let resumed = run_campaign(
        &spec,
        &RunOptions {
            jobs: 1,
            cache: Some(Arc::clone(&cache)),
            checkpoint: Some(Arc::new(CheckpointLog::open(&checkpoint_path).unwrap())),
            resume: true,
            ..RunOptions::default()
        },
    );
    assert!(resumed.passed(), "{resumed}");
    assert_eq!(cache.quarantined(), 1);
    assert_eq!(resumed.stats.resumed, 3);
    assert_eq!(resumed.stats.simulated, 1);
    assert!(resumed
        .incidents
        .iter()
        .any(|i| i.kind == "resume-cache-miss"));
    // Entries shard into two-level subdirectories; walk them all.
    let mut corrupt = 0;
    for shard in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
        if !shard.path().is_dir() {
            continue;
        }
        corrupt += std::fs::read_dir(shard.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "corrupt"))
            .count();
    }
    assert_eq!(corrupt, 1, "quarantined entry kept for forensics");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_acceptance_scenario_reports_all_three_fault_kinds() {
    // ISSUE acceptance: a campaign with an injected panic, a watchdog
    // timeout, and a corrupt cache entry completes the remaining cells
    // and reports all three structurally.
    let spec = grid();
    let dir = scratch_dir("acceptance");
    let plan = FaultPlan::new()
        .with(FaultKind::PanicInCell, 0, true)
        .with(FaultKind::SlowCell, 1, true)
        .with(FaultKind::CorruptCacheEntry, 2, true);
    let report = run_campaign(
        &spec,
        &RunOptions {
            jobs: 2,
            cache: Some(Arc::new(ResultCache::with_disk(&dir).unwrap())),
            faults: Some(Arc::new(FaultInjector::new(plan))),
            ..RunOptions::default()
        },
    );

    let kinds: Vec<&str> = report.failures.iter().map(|f| f.kind.as_str()).collect();
    assert!(kinds.contains(&"panic"), "{kinds:?}");
    assert!(kinds.contains(&"timeout"), "{kinds:?}");
    assert_eq!(report.cells.len(), 2, "remaining cells completed");
    assert!(!report.passed(), "the CLI exits nonzero on this report");
    let json = report.to_json();
    assert!(json.contains("\"failures\""));
    assert!(json.contains("\"attempts\""));

    // The corrupt entry surfaces as a quarantine on the next read.
    let cache = Arc::new(ResultCache::with_disk(&dir).unwrap());
    let cell = &spec.cells()[2];
    assert!(cache.get(fingerprint(cell)).is_none());
    assert_eq!(cache.quarantined(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}
