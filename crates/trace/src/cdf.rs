//! Empirical CDFs over run lengths (Fig. 8b).

/// An empirical cumulative distribution over integer samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Builds a CDF from samples (need not be sorted).
    pub fn new(mut samples: Vec<u64>) -> Cdf {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `value` (0.0 for an empty CDF).
    pub fn fraction_at(&self, value: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&s| s <= value);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`), or `None` for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// The most common value, or `None` for an empty CDF.
    pub fn mode(&self) -> Option<u64> {
        let mut best: Option<(u64, usize)> = None;
        let mut i = 0;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let j = self.sorted.partition_point(|&s| s <= v);
            let count = j - i;
            if best.map(|(_, c)| count > c).unwrap_or(true) {
                best = Some((v, count));
            }
            i = j;
        }
        best.map(|(v, _)| v)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u64> {
        self.sorted.last().copied()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.sorted.first().copied()
    }

    /// Iterates `(value, cumulative fraction)` pairs at each distinct
    /// value — the series a CDF plot draws.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let v = self.sorted[i];
            let j = self.sorted.partition_point(|&s| s <= v);
            out.push((v, j as f64 / self.sorted.len() as f64));
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let cdf = Cdf::new(vec![4, 4, 4, 4, 4, 4, 4, 4, 30, 35]);
        assert!((cdf.fraction_at(4) - 0.8).abs() < 1e-12);
        assert!((cdf.fraction_at(3) - 0.0).abs() < 1e-12);
        assert!((cdf.fraction_at(35) - 1.0).abs() < 1e-12);
        assert_eq!(cdf.quantile(0.5), Some(4));
        assert_eq!(cdf.quantile(1.0), Some(35));
        assert_eq!(cdf.mode(), Some(4));
        assert_eq!(cdf.max(), Some(35));
        assert_eq!(cdf.min(), Some(4));
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mode(), None);
        assert_eq!(cdf.fraction_at(10), 0.0);
    }

    #[test]
    fn points_are_monotonic() {
        let cdf = Cdf::new(vec![1, 2, 2, 3, 3, 3]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].1 < w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_q() {
        let _ = Cdf::new(vec![1]).quantile(1.5);
    }
}
