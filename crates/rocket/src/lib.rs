//! # icicle-rocket
//!
//! A cycle-level model of the Rocket core: a 5-stage, single-issue,
//! in-order RV64 pipeline (Fig. 2a of the paper) with a 2-wide fetch
//! front-end, a small instruction buffer, a 512-entry BHT + 28-entry BTB
//! branch predictor, and a blocking data cache.
//!
//! The model replays the architecturally-executed [`DynStream`] with
//! timing, raising the full Rocket PMU event list of Table I each cycle —
//! including the three events Icicle adds (`Instr-issued`,
//! `Fetch-bubbles`, `Recovering`). The fetch-bubble definition is exactly
//! the paper's:
//!
//! ```text
//! FetchBubble = ¬Recovering ∧ (¬IBuf-valid ∧ IBuf-ready)
//! ```
//!
//! ```
//! use icicle_isa::{Interpreter, ProgramBuilder, Reg};
//! use icicle_rocket::{Rocket, RocketConfig};
//! use icicle_events::EventCore;
//!
//! # fn main() -> Result<(), icicle_isa::IsaError> {
//! let mut b = ProgramBuilder::new("spin");
//! b.li(Reg::T0, 0);
//! b.li(Reg::T1, 100);
//! b.label("l");
//! b.addi(Reg::T0, Reg::T0, 1);
//! b.blt(Reg::T0, Reg::T1, "l");
//! b.halt();
//! let stream = Interpreter::new(&b.build()?).run(10_000)?;
//!
//! let mut core = Rocket::new(RocketConfig::default(), stream);
//! while !core.is_done() {
//!     core.step();
//! }
//! assert!(core.cycle() > 100);
//! # Ok(())
//! # }
//! ```
//!
//! [`DynStream`]: icicle_isa::DynStream

mod config;
mod core;
mod predictor;
mod ras;

pub use config::RocketConfig;
pub use core::Rocket;
pub use predictor::{Bht, Btb};
pub use ras::{is_call, is_return, ReturnAddressStack};
