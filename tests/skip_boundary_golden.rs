//! Golden snapshot of counter state at skip-span boundaries.
//!
//! The equivalence suite proves skip-on and skip-off agree at the *end*
//! of a run; this test pins the counters at the exact cycles where the
//! harness enters and leaves fast-forwarded spans — the places a bulk
//! settlement would first go wrong. Two walks over the same stall-heavy
//! cells:
//!
//! - a cycle-by-cycle walk that observes every vector and snapshots the
//!   exact counts at each span boundary;
//! - a skipping walk that settles each claimed span with
//!   `observe_many` + `fast_forward`, snapshotting at the same cycles.
//!
//! The two snapshot sequences must be identical, and their canonical
//! rendering is compared against `tests/golden/skip_boundaries.json`
//! byte-for-byte (regenerate with `ICICLE_UPDATE_GOLDEN=1`).

use std::path::Path;

use icicle::events::{EventCore, EventCounts, EventId};
use icicle::prelude::{Rocket, RocketConfig, Workload};
use icicle::verify::compare_or_update;
use icicle::workloads::micro;
use icicle_obs::Json;

/// Counter state captured at one boundary cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Snapshot {
    /// Cycle the claim was made at (the span covers the next `span`
    /// cycles).
    cycle: u64,
    span: u64,
    instret: u64,
    retired: u64,
    dcache_misses: u64,
    branch_mispredicts: u64,
    /// Bitmask of events asserted by the (single, repeated) span vector.
    active: u32,
}

impl Snapshot {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("cycle", Json::Int(self.cycle)),
            ("span", Json::Int(self.span)),
            ("instret", Json::Int(self.instret)),
            ("retired", Json::Int(self.retired)),
            ("dcache_misses", Json::Int(self.dcache_misses)),
            ("branch_mispredicts", Json::Int(self.branch_mispredicts)),
            ("active_events", Json::Int(u64::from(self.active))),
        ])
    }
}

/// How many span boundaries each walk records.
const BOUNDARIES: usize = 6;
/// Minimum claim length that counts as a boundary worth pinning.
const MIN_SPAN: u64 = 4;

fn snapshot(core: &Rocket, counts: &EventCounts, span: u64, active: u32) -> Snapshot {
    Snapshot {
        cycle: core.cycle(),
        span,
        instret: core.instret(),
        retired: counts.get(EventId::InstrRetired),
        dcache_misses: counts.get(EventId::DCacheMiss),
        branch_mispredicts: counts.get(EventId::BranchMispredict),
        active,
    }
}

/// Cycle-by-cycle reference walk: observe every vector; at each claim
/// of at least [`MIN_SPAN`], snapshot the pre-span counter state and
/// then step through the whole claimed span one cycle at a time.
fn reference_walk(workload: &Workload) -> Vec<Snapshot> {
    let stream = workload.execute().expect("architectural execution");
    let mut core = Rocket::new(RocketConfig::default(), stream);
    let mut counts = EventCounts::new();
    let mut out = Vec::new();
    while !core.is_done() && out.len() < BOUNDARIES {
        if let Some(n) = core.time_until_next_event() {
            if n >= MIN_SPAN {
                let mut snap = snapshot(&core, &counts, n, 0);
                // Consume the claimed span cycle-by-cycle; the first
                // vector is the one the whole span repeats.
                snap.active = {
                    let v = core.step();
                    counts.observe(v);
                    v.active_events()
                };
                for _ in 1..n {
                    let v = core.step();
                    counts.observe(v);
                }
                out.push(snap);
                continue;
            }
        }
        let v = core.step();
        counts.observe(v);
    }
    out
}

/// Skipping walk: every claim of 2+ cycles is settled in bulk, exactly
/// the way the perf harness does it (one real step, then `observe_many`
/// and `fast_forward` for the rest). Snapshots are taken at the same
/// pre-span points as the reference walk, so each one pins the bulk
/// settlement of every span before it.
fn skipping_walk(workload: &Workload) -> Vec<Snapshot> {
    let stream = workload.execute().expect("architectural execution");
    let mut core = Rocket::new(RocketConfig::default(), stream);
    let mut counts = EventCounts::new();
    let mut out = Vec::new();
    while !core.is_done() && out.len() < BOUNDARIES {
        if let Some(n) = core.time_until_next_event() {
            if n >= 2 {
                let record = n >= MIN_SPAN;
                let mut snap = snapshot(&core, &counts, n, 0);
                snap.active = {
                    let v = core.step();
                    counts.observe(v);
                    counts.observe_many(v, n - 1);
                    v.active_events()
                };
                if record {
                    out.push(snap);
                }
                core.fast_forward(n - 1);
                continue;
            }
        }
        let v = core.step();
        counts.observe(v);
    }
    out
}

#[test]
fn boundary_counters_match_and_pin_the_golden_snapshot() {
    let cells = [
        ("ptrchase", micro::ptrchase(1024, 2_000)),
        ("muldiv", micro::muldiv(500)),
    ];
    let mut docs = Vec::new();
    for (name, workload) in &cells {
        let reference = reference_walk(workload);
        let skipping = skipping_walk(workload);
        assert_eq!(
            reference.len(),
            BOUNDARIES,
            "{name}: too few skip boundaries to pin"
        );
        assert_eq!(
            reference, skipping,
            "{name}: bulk settlement diverged from the cycle-by-cycle walk"
        );
        docs.push(Json::object(vec![
            ("workload", Json::Str(name.to_string())),
            ("core", Json::Str("rocket".to_string())),
            (
                "boundaries",
                Json::Array(reference.iter().map(Snapshot::to_json).collect()),
            ),
        ]));
    }
    let mut rendered = Json::object(vec![("cells", Json::Array(docs))]).render();
    rendered.push('\n');
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/skip_boundaries.json");
    compare_or_update(&path, &rendered).expect("golden comparison");
}
