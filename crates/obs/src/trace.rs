//! Explicit trace-context propagation.
//!
//! A [`TraceId`] is minted once per job or CLI invocation and names the
//! *whole story* of that piece of work — every span and event emitted
//! while a [`TraceContext`] carrying it is entered gets stamped with the
//! id, no matter which thread emits. Propagation is deliberately
//! explicit: crossing a thread-pool boundary means calling [`handoff`]
//! on the spawning side, capturing the returned context into the spawn
//! closure, and calling [`enter`] on the worker side. There is no
//! ambient magic that leaks a context into a pool thread that never
//! asked for it, so a worker that interleaves cells from different jobs
//! always stamps each record with the right trace.
//!
//! The context also carries a *parent hint*: the innermost span open on
//! the spawning thread at handoff time. A span opened on a fresh thread
//! with an empty span stack parents to that hint, which is how
//! `campaign.cell` spans on worker threads link under the one
//! `campaign.run` span and the whole job renders as a single tree.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// SplitMix64 — the same mixer the fault planner uses; good enough to
/// decorrelate sequential mint counters into ids that look random.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A process-unique, non-zero trace identifier, rendered on the wire as
/// 16 lowercase hex characters (`X-Icicle-Trace`, status documents,
/// post-mortem file names).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TraceId(u64);

impl TraceId {
    /// Mints a fresh id: a per-process random seed mixed with a
    /// monotonic sequence, so ids are unique within the process and
    /// almost surely unique across concurrent servers.
    pub fn mint() -> TraceId {
        static SEQ: AtomicU64 = AtomicU64::new(1);
        static SEED: OnceLock<u64> = OnceLock::new();
        let seed = *SEED.get_or_init(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5eed);
            splitmix64(nanos ^ ((std::process::id() as u64) << 32))
        });
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        TraceId(if id == 0 { 1 } else { id })
    }

    /// The raw id (never zero for a minted id).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Wraps a raw id; zero means "no trace" and is rejected.
    pub fn from_u64(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// The canonical wire form: 16 lowercase hex characters.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the canonical wire form back.
    pub fn parse_hex(text: &str) -> Option<TraceId> {
        if text.len() != 16 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(text, 16)
            .ok()
            .and_then(TraceId::from_u64)
    }
}

/// What gets handed across a thread boundary: the trace plus the span
/// the receiving side should parent under.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceContext {
    pub trace: TraceId,
    /// Parent hint for the first span opened with an empty stack.
    pub parent: Option<u64>,
}

impl TraceContext {
    /// A context with no parent hint — the trace's root.
    pub fn root(trace: TraceId) -> TraceContext {
        TraceContext {
            trace,
            parent: None,
        }
    }
}

thread_local! {
    // (trace, parent-hint) as raw u64s; 0 = absent. A Cell of a pair
    // keeps the emit-path read branch-free.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// The context entered on this thread, if any.
pub fn current() -> Option<TraceContext> {
    let (trace, parent) = CURRENT.with(Cell::get);
    TraceId::from_u64(trace).map(|trace| TraceContext {
        trace,
        parent: if parent == 0 { None } else { Some(parent) },
    })
}

/// The raw (trace, parent-hint) pair for the emit path.
pub(crate) fn current_raw() -> (u64, Option<u64>) {
    let (trace, parent) = CURRENT.with(Cell::get);
    (trace, if parent == 0 { None } else { Some(parent) })
}

/// Just the raw trace id (0 = none) — for records that never parent.
pub(crate) fn current_trace() -> u64 {
    CURRENT.with(Cell::get).0
}

/// Restores the previously entered context when dropped.
pub struct TraceScope {
    prior: (u64, u64),
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let prior = self.prior;
        CURRENT.with(|cell| cell.set(prior));
    }
}

/// Enters `ctx` on the calling thread until the returned scope drops.
/// Scopes nest; dropping restores whatever was entered before.
pub fn enter(ctx: TraceContext) -> TraceScope {
    let prior = CURRENT.with(|cell| {
        let prior = cell.get();
        cell.set((ctx.trace.as_u64(), ctx.parent.unwrap_or(0)));
        prior
    });
    TraceScope { prior }
}

/// The context to capture on the spawning thread and [`enter`] on a
/// worker: the current trace plus the innermost span open *here* (or
/// the entered context's own parent hint if no span is open), so the
/// worker's first span links under the spawner's span.
pub fn handoff() -> Option<TraceContext> {
    let ctx = current()?;
    Some(TraceContext {
        trace: ctx.trace,
        parent: crate::collector::current_span().or(ctx.parent),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{install, shutdown, span, test_serial, Level, RingCollector};
    use std::sync::Arc;

    #[test]
    fn minted_ids_are_unique_and_round_trip_hex() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), 0);
        let hex = a.to_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(TraceId::parse_hex(&hex), Some(a));
        assert_eq!(TraceId::parse_hex("xyz"), None);
        assert_eq!(TraceId::parse_hex("0000000000000000"), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let _serial = test_serial();
        assert!(current().is_none());
        let outer = TraceContext::root(TraceId::mint());
        {
            let _outer = enter(outer);
            assert_eq!(current(), Some(outer));
            let inner = TraceContext {
                trace: TraceId::mint(),
                parent: Some(42),
            };
            {
                let _inner = enter(inner);
                assert_eq!(current(), Some(inner));
            }
            assert_eq!(current(), Some(outer));
        }
        assert!(current().is_none());
    }

    #[test]
    fn records_are_stamped_and_handoff_parents_across_threads() {
        let _serial = test_serial();
        let ring = Arc::new(RingCollector::new(32));
        install(Level::Debug, ring.clone());
        let trace = TraceId::mint();
        let captured = {
            let _ctx = enter(TraceContext::root(trace));
            let _outer = span(Level::Info, "outer");
            handoff().expect("context entered")
        };
        assert!(captured.parent.is_some(), "handoff captures the open span");
        // Simulate the worker side: fresh thread, explicit enter.
        let worker = std::thread::spawn(move || {
            let _ctx = enter(captured);
            let _cell = span(Level::Info, "cell");
        });
        worker.join().unwrap();
        shutdown();
        let records = ring.records();
        assert!(records.iter().all(|r| r.trace == trace.as_u64()));
        let outer_id = records[0].id;
        let cell_start = records
            .iter()
            .find(|r| r.name == "cell")
            .expect("worker span recorded");
        assert_eq!(
            cell_start.parent,
            Some(outer_id),
            "worker span parents under the handed-off span"
        );
    }
}
