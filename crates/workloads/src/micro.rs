//! The riscv-tests-style microbenchmarks (Fig. 7 a, b, k, l and the
//! branch-inversion case study).

use icicle_isa::{ProgramBuilder, Reg};

use crate::rng::XorShift;
use crate::workload::Workload;

/// Emits the standard epilogue: sums `n` words at `base` into `a0` and
/// sets `a1` to 1 iff they are in non-decreasing (unsigned) order.
///
/// `base` must survive the workload body in the given register.
fn emit_checksum_sorted(b: &mut ProgramBuilder, base: Reg, n: i64) {
    b.li(Reg::A0, 0);
    b.li(Reg::A1, 1);
    b.li(Reg::A5, 0); // prev
    b.li(Reg::T0, 0);
    b.li(Reg::A6, n);
    b.label("check_loop");
    b.bge(Reg::T0, Reg::A6, "check_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, base, Reg::T1);
    b.ld(Reg::T1, Reg::T1, 0);
    b.add(Reg::A0, Reg::A0, Reg::T1);
    b.bgeu(Reg::T1, Reg::A5, "check_ok");
    b.li(Reg::A1, 0);
    b.label("check_ok");
    b.mv(Reg::A5, Reg::T1);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("check_loop");
    b.label("check_done");
    b.halt();
}

/// Bottom-up merge sort of `n` pseudo-random words (`n` must be a power
/// of two ≥ 2). This is the paper's motivating workload (Fig. 3).
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2.
pub fn mergesort(n: u64) -> Workload {
    mergesort_seeded(n, 0x5eed_0001)
}

/// [`mergesort`] over a dataset drawn from `data_seed` — campaigns sweep
/// the seed to measure input sensitivity without touching the kernel.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2.
pub fn mergesort_seeded(n: u64, data_seed: u64) -> Workload {
    assert!(
        n.is_power_of_two() && n >= 2,
        "n must be a power of two ≥ 2"
    );
    let mut b = ProgramBuilder::new("mergesort");
    let data = XorShift::new(data_seed).values(n as usize);
    let a = b.data_u64(&data);
    let tmp = b.alloc_data(n * 8);
    b.li(Reg::S0, a as i64); // src
    b.li(Reg::S1, tmp as i64); // dst
    b.li(Reg::S2, n as i64);
    b.li(Reg::S3, 1); // width
    b.label("width_loop");
    b.bge(Reg::S3, Reg::S2, "width_done");
    b.li(Reg::T0, 0); // lo
    b.label("lo_loop");
    b.bge(Reg::T0, Reg::S2, "lo_done");
    b.add(Reg::T1, Reg::T0, Reg::S3); // mid
    b.add(Reg::T2, Reg::T1, Reg::S3); // hi (n is a power of two: never clipped)
    b.mv(Reg::T3, Reg::T0); // i
    b.mv(Reg::T4, Reg::T1); // j
    b.mv(Reg::T5, Reg::T0); // k
    b.label("merge_loop");
    b.bge(Reg::T3, Reg::T1, "drain_j");
    b.bge(Reg::T4, Reg::T2, "drain_i");
    b.slli(Reg::T6, Reg::T3, 3);
    b.add(Reg::T6, Reg::S0, Reg::T6);
    b.ld(Reg::T6, Reg::T6, 0); // a[i]
    b.slli(Reg::A2, Reg::T4, 3);
    b.add(Reg::A2, Reg::S0, Reg::A2);
    b.ld(Reg::A2, Reg::A2, 0); // a[j]
    b.bltu(Reg::A2, Reg::T6, "take_j");
    // take i
    b.slli(Reg::A3, Reg::T5, 3);
    b.add(Reg::A3, Reg::S1, Reg::A3);
    b.sd(Reg::T6, Reg::A3, 0);
    b.addi(Reg::T3, Reg::T3, 1);
    b.j("merge_k");
    b.label("take_j");
    b.slli(Reg::A3, Reg::T5, 3);
    b.add(Reg::A3, Reg::S1, Reg::A3);
    b.sd(Reg::A2, Reg::A3, 0);
    b.addi(Reg::T4, Reg::T4, 1);
    b.label("merge_k");
    b.addi(Reg::T5, Reg::T5, 1);
    b.j("merge_loop");
    b.label("drain_i");
    b.bge(Reg::T3, Reg::T1, "merge_done");
    b.slli(Reg::T6, Reg::T3, 3);
    b.add(Reg::T6, Reg::S0, Reg::T6);
    b.ld(Reg::T6, Reg::T6, 0);
    b.slli(Reg::A3, Reg::T5, 3);
    b.add(Reg::A3, Reg::S1, Reg::A3);
    b.sd(Reg::T6, Reg::A3, 0);
    b.addi(Reg::T3, Reg::T3, 1);
    b.addi(Reg::T5, Reg::T5, 1);
    b.j("drain_i");
    b.label("drain_j");
    b.bge(Reg::T4, Reg::T2, "merge_done");
    b.slli(Reg::T6, Reg::T4, 3);
    b.add(Reg::T6, Reg::S0, Reg::T6);
    b.ld(Reg::T6, Reg::T6, 0);
    b.slli(Reg::A3, Reg::T5, 3);
    b.add(Reg::A3, Reg::S1, Reg::A3);
    b.sd(Reg::T6, Reg::A3, 0);
    b.addi(Reg::T4, Reg::T4, 1);
    b.addi(Reg::T5, Reg::T5, 1);
    b.j("drain_j");
    b.label("merge_done");
    b.add(Reg::T0, Reg::T0, Reg::S3);
    b.add(Reg::T0, Reg::T0, Reg::S3);
    b.j("lo_loop");
    b.label("lo_done");
    b.mv(Reg::A4, Reg::S0);
    b.mv(Reg::S0, Reg::S1);
    b.mv(Reg::S1, Reg::A4);
    b.slli(Reg::S3, Reg::S3, 1);
    b.j("width_loop");
    b.label("width_done");
    emit_checksum_sorted(&mut b, Reg::S0, n as i64);
    Workload::new(
        "mergesort",
        b.build().expect("mergesort builds"),
        200 * n * (64 - n.leading_zeros() as u64) + 100_000,
    )
}

/// Iterative quicksort (Lomuto partition) of `n` pseudo-random words —
/// the Bad-Speculation-dominated workload of Fig. 7(a): the
/// `a[j] < pivot` comparison is data-dependent and unpredictable.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn qsort(n: u64) -> Workload {
    qsort_seeded(n, 0x5eed_0002)
}

/// [`qsort`] over a dataset drawn from `data_seed` (see
/// [`mergesort_seeded`]).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn qsort_seeded(n: u64, data_seed: u64) -> Workload {
    assert!(n >= 2, "n must be at least 2");
    let mut b = ProgramBuilder::new("qsort");
    let data = XorShift::new(data_seed).values(n as usize);
    let a = b.data_u64(&data);
    let stack = b.alloc_data(n * 16 + 64);
    b.li(Reg::S0, a as i64);
    b.li(Reg::S2, n as i64);
    b.li(Reg::S3, stack as i64);
    // push (0, n)
    b.li(Reg::T5, 0);
    b.sd(Reg::T5, Reg::S3, 0);
    b.sd(Reg::S2, Reg::S3, 8);
    b.li(Reg::S4, 1); // stack depth
    b.label("main_loop");
    b.beq(Reg::S4, Reg::ZERO, "sort_done");
    b.addi(Reg::S4, Reg::S4, -1);
    b.slli(Reg::T6, Reg::S4, 4);
    b.add(Reg::T6, Reg::S3, Reg::T6);
    b.ld(Reg::T0, Reg::T6, 0); // lo
    b.ld(Reg::T1, Reg::T6, 8); // hi
    b.sub(Reg::T2, Reg::T1, Reg::T0);
    b.slti(Reg::T3, Reg::T2, 2);
    b.bne(Reg::T3, Reg::ZERO, "main_loop");
    // pivot = a[hi-1]
    b.addi(Reg::T2, Reg::T1, -1);
    b.slli(Reg::T3, Reg::T2, 3);
    b.add(Reg::T3, Reg::S0, Reg::T3); // &a[hi-1]
    b.ld(Reg::T4, Reg::T3, 0); // pivot
    b.mv(Reg::T5, Reg::T0); // i
    b.mv(Reg::T6, Reg::T0); // j
    b.label("part_loop");
    b.bge(Reg::T6, Reg::T2, "part_done");
    b.slli(Reg::A2, Reg::T6, 3);
    b.add(Reg::A2, Reg::S0, Reg::A2);
    b.ld(Reg::A3, Reg::A2, 0); // a[j]
    b.bgeu(Reg::A3, Reg::T4, "no_swap"); // the unpredictable pivot branch
    b.slli(Reg::A4, Reg::T5, 3);
    b.add(Reg::A4, Reg::S0, Reg::A4);
    b.ld(Reg::A5, Reg::A4, 0);
    b.sd(Reg::A3, Reg::A4, 0);
    b.sd(Reg::A5, Reg::A2, 0);
    b.addi(Reg::T5, Reg::T5, 1);
    b.label("no_swap");
    b.addi(Reg::T6, Reg::T6, 1);
    b.j("part_loop");
    b.label("part_done");
    // swap a[i], a[hi-1]
    b.slli(Reg::A4, Reg::T5, 3);
    b.add(Reg::A4, Reg::S0, Reg::A4);
    b.ld(Reg::A5, Reg::A4, 0);
    b.sd(Reg::T4, Reg::A4, 0);
    b.sd(Reg::A5, Reg::T3, 0);
    // push (lo, i)
    b.slli(Reg::A2, Reg::S4, 4);
    b.add(Reg::A2, Reg::S3, Reg::A2);
    b.sd(Reg::T0, Reg::A2, 0);
    b.sd(Reg::T5, Reg::A2, 8);
    b.addi(Reg::S4, Reg::S4, 1);
    // push (i+1, hi)
    b.addi(Reg::A3, Reg::T5, 1);
    b.slli(Reg::A2, Reg::S4, 4);
    b.add(Reg::A2, Reg::S3, Reg::A2);
    b.sd(Reg::A3, Reg::A2, 0);
    b.sd(Reg::T1, Reg::A2, 8);
    b.addi(Reg::S4, Reg::S4, 1);
    b.j("main_loop");
    b.label("sort_done");
    emit_checksum_sorted(&mut b, Reg::S0, n as i64);
    Workload::new(
        "qsort",
        b.build().expect("qsort builds"),
        600 * n * (64 - n.leading_zeros() as u64) + 200_000,
    )
}

/// LSD radix sort (two 8-bit digit passes) of `n` 16-bit values — the
/// near-ideal-IPC workload: loop-centric control flow and no mul/div.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn rsort(n: u64) -> Workload {
    rsort_seeded(n, 0x5eed_0003)
}

/// [`rsort`] over a dataset drawn from `data_seed` (see
/// [`mergesort_seeded`]).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn rsort_seeded(n: u64, data_seed: u64) -> Workload {
    assert!(n >= 2, "n must be at least 2");
    let mut b = ProgramBuilder::new("rsort");
    let mut rng = XorShift::new(data_seed);
    let data: Vec<u64> = (0..n).map(|_| rng.below(1 << 16)).collect();
    let a = b.data_u64(&data);
    let tmp = b.alloc_data(n * 8);
    let counts = b.alloc_data(256 * 8);
    b.li(Reg::S0, a as i64);
    b.li(Reg::S1, tmp as i64);
    b.li(Reg::S2, n as i64);
    b.li(Reg::S3, counts as i64);
    b.li(Reg::S4, 0); // shift
    b.label("pass_loop");
    // zero the counts
    b.li(Reg::T0, 0);
    b.li(Reg::T5, 256);
    b.label("zero_loop");
    b.bge(Reg::T0, Reg::T5, "zero_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S3, Reg::T1);
    b.sd(Reg::ZERO, Reg::T1, 0);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("zero_loop");
    b.label("zero_done");
    // histogram
    b.li(Reg::T0, 0);
    b.label("count_loop");
    b.bge(Reg::T0, Reg::S2, "count_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.ld(Reg::T2, Reg::T1, 0);
    b.srl(Reg::T2, Reg::T2, Reg::S4);
    b.andi(Reg::T2, Reg::T2, 255);
    b.slli(Reg::T3, Reg::T2, 3);
    b.add(Reg::T3, Reg::S3, Reg::T3);
    b.ld(Reg::T4, Reg::T3, 0);
    b.addi(Reg::T4, Reg::T4, 1);
    b.sd(Reg::T4, Reg::T3, 0);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("count_loop");
    b.label("count_done");
    // exclusive prefix sum
    b.li(Reg::T0, 0);
    b.li(Reg::T1, 0); // running total
    b.label("prefix_loop");
    b.bge(Reg::T0, Reg::T5, "prefix_done");
    b.slli(Reg::T3, Reg::T0, 3);
    b.add(Reg::T3, Reg::S3, Reg::T3);
    b.ld(Reg::T4, Reg::T3, 0);
    b.sd(Reg::T1, Reg::T3, 0);
    b.add(Reg::T1, Reg::T1, Reg::T4);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("prefix_loop");
    b.label("prefix_done");
    // scatter
    b.li(Reg::T0, 0);
    b.label("scatter_loop");
    b.bge(Reg::T0, Reg::S2, "scatter_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.ld(Reg::T2, Reg::T1, 0); // value
    b.srl(Reg::T3, Reg::T2, Reg::S4);
    b.andi(Reg::T3, Reg::T3, 255);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::S3, Reg::T3);
    b.ld(Reg::T4, Reg::T3, 0); // position
    b.addi(Reg::T6, Reg::T4, 1);
    b.sd(Reg::T6, Reg::T3, 0);
    b.slli(Reg::T4, Reg::T4, 3);
    b.add(Reg::T4, Reg::S1, Reg::T4);
    b.sd(Reg::T2, Reg::T4, 0);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("scatter_loop");
    b.label("scatter_done");
    // swap buffers, next digit
    b.mv(Reg::A4, Reg::S0);
    b.mv(Reg::S0, Reg::S1);
    b.mv(Reg::S1, Reg::A4);
    b.addi(Reg::S4, Reg::S4, 8);
    b.li(Reg::T0, 16);
    b.blt(Reg::S4, Reg::T0, "pass_loop");
    emit_checksum_sorted(&mut b, Reg::S0, n as i64);
    Workload::new("rsort", b.build().expect("rsort builds"), 200 * n + 200_000)
}

/// Word-granular `memcpy` of `bytes` (rounded down to a multiple of 32) —
/// the Memory-Bound workload of Fig. 7(b)/(l). The footprint (source plus
/// destination) should exceed the L1D to show the effect.
///
/// `a0` ends as `dst[0] + dst[last] + words` for verification.
///
/// # Panics
///
/// Panics if `bytes < 64`.
pub fn memcpy(bytes: u64) -> Workload {
    assert!(bytes >= 64, "need at least 64 bytes");
    let words = (bytes / 32) * 4;
    let mut b = ProgramBuilder::new("memcpy");
    let data = XorShift::new(0x5eed_0004).values(words as usize);
    let src = b.data_u64(&data);
    let dst = b.alloc_data(words * 8);
    b.li(Reg::S0, src as i64);
    b.li(Reg::S1, dst as i64);
    b.li(Reg::S2, words as i64);
    b.li(Reg::T0, 0);
    b.label("copy_loop");
    b.bge(Reg::T0, Reg::S2, "copy_done");
    b.ld(Reg::T1, Reg::S0, 0);
    b.ld(Reg::T2, Reg::S0, 8);
    b.ld(Reg::T3, Reg::S0, 16);
    b.ld(Reg::T4, Reg::S0, 24);
    b.sd(Reg::T1, Reg::S1, 0);
    b.sd(Reg::T2, Reg::S1, 8);
    b.sd(Reg::T3, Reg::S1, 16);
    b.sd(Reg::T4, Reg::S1, 24);
    b.addi(Reg::S0, Reg::S0, 32);
    b.addi(Reg::S1, Reg::S1, 32);
    b.addi(Reg::T0, Reg::T0, 4);
    b.j("copy_loop");
    b.label("copy_done");
    // a0 = dst[0] + dst[words-1] + words
    b.li(Reg::T5, dst as i64);
    b.ld(Reg::A0, Reg::T5, 0);
    b.slli(Reg::T6, Reg::S2, 3);
    b.add(Reg::T6, Reg::T5, Reg::T6);
    b.ld(Reg::T6, Reg::T6, -8);
    b.add(Reg::A0, Reg::A0, Reg::T6);
    b.add(Reg::A0, Reg::A0, Reg::S2);
    b.halt();
    Workload::new(
        "memcpy",
        b.build().expect("memcpy builds"),
        20 * words + 10_000,
    )
}

/// Dense `dim × dim` double-precision matrix multiply (i-k-j order) —
/// exercises the FP issue port (the lane-4 signature of Table V's `mm`
/// row).
///
/// `a0` ends as the bit pattern of `sum(C)`.
///
/// # Panics
///
/// Panics if `dim` is zero.
pub fn mm(dim: u64) -> Workload {
    assert!(dim > 0, "dimension must be non-zero");
    let mut b = ProgramBuilder::new("mm");
    let cells = (dim * dim) as usize;
    let a_vals: Vec<u64> = (0..cells)
        .map(|i| (((i % 7) as f64) * 0.5 + 1.0).to_bits())
        .collect();
    let b_vals: Vec<u64> = (0..cells)
        .map(|i| (((i % 5) as f64) * 0.25 + 0.5).to_bits())
        .collect();
    let ma = b.data_u64(&a_vals);
    let mb = b.data_u64(&b_vals);
    let mc = b.alloc_data(cells as u64 * 8);
    b.li(Reg::S3, ma as i64);
    b.li(Reg::S4, mb as i64);
    b.li(Reg::S5, mc as i64);
    b.li(Reg::S2, dim as i64);
    b.li(Reg::T0, 0); // i
    b.label("i_loop");
    b.bge(Reg::T0, Reg::S2, "mm_done");
    b.li(Reg::T1, 0); // k
    b.label("k_loop");
    b.bge(Reg::T1, Reg::S2, "k_done");
    b.mul(Reg::T3, Reg::T0, Reg::S2);
    b.add(Reg::T3, Reg::T3, Reg::T1);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::S3, Reg::T3);
    b.fld(icicle_isa::FReg::F0, Reg::T3, 0); // r = A[i][k]
    b.mul(Reg::T4, Reg::T1, Reg::S2);
    b.slli(Reg::T4, Reg::T4, 3);
    b.add(Reg::T4, Reg::S4, Reg::T4); // &B[k][0]
    b.mul(Reg::T5, Reg::T0, Reg::S2);
    b.slli(Reg::T5, Reg::T5, 3);
    b.add(Reg::T5, Reg::S5, Reg::T5); // &C[i][0]
    b.li(Reg::T2, 0); // j
    b.label("j_loop");
    b.bge(Reg::T2, Reg::S2, "j_done");
    b.slli(Reg::T6, Reg::T2, 3);
    b.add(Reg::A2, Reg::T4, Reg::T6);
    b.fld(icicle_isa::FReg::F1, Reg::A2, 0);
    b.add(Reg::A3, Reg::T5, Reg::T6);
    b.fld(icicle_isa::FReg::F2, Reg::A3, 0);
    b.fmul(
        icicle_isa::FReg::F3,
        icicle_isa::FReg::F0,
        icicle_isa::FReg::F1,
    );
    b.fadd(
        icicle_isa::FReg::F2,
        icicle_isa::FReg::F2,
        icicle_isa::FReg::F3,
    );
    b.fsd(icicle_isa::FReg::F2, Reg::A3, 0);
    b.addi(Reg::T2, Reg::T2, 1);
    b.j("j_loop");
    b.label("j_done");
    b.addi(Reg::T1, Reg::T1, 1);
    b.j("k_loop");
    b.label("k_done");
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("i_loop");
    b.label("mm_done");
    // a0 = bits(sum C)
    b.li(Reg::T0, 0);
    b.li(Reg::T1, cells as i64);
    b.li(Reg::T2, mc as i64);
    b.fmv_d_x(icicle_isa::FReg::F4, Reg::ZERO);
    b.label("sum_loop");
    b.bge(Reg::T0, Reg::T1, "sum_done");
    b.slli(Reg::T3, Reg::T0, 3);
    b.add(Reg::T3, Reg::T2, Reg::T3);
    b.fld(icicle_isa::FReg::F5, Reg::T3, 0);
    b.fadd(
        icicle_isa::FReg::F4,
        icicle_isa::FReg::F4,
        icicle_isa::FReg::F5,
    );
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("sum_loop");
    b.label("sum_done");
    b.fmv_x_d(Reg::A0, icicle_isa::FReg::F4);
    b.halt();
    Workload::new(
        "mm",
        b.build().expect("mm builds"),
        40 * dim * dim * dim + 50_000,
    )
}

/// Element-wise vector add `c[i] = a[i] + b[i]` over `n` words.
///
/// `a0` ends as `sum(c)`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn vvadd(n: u64) -> Workload {
    assert!(n > 0, "n must be non-zero");
    let mut b = ProgramBuilder::new("vvadd");
    let mut rng = XorShift::new(0x5eed_0005);
    let av: Vec<u64> = rng.values(n as usize).iter().map(|v| v & 0xffff).collect();
    let bv: Vec<u64> = rng.values(n as usize).iter().map(|v| v & 0xffff).collect();
    let aa = b.data_u64(&av);
    let bb = b.data_u64(&bv);
    let cc = b.alloc_data(n * 8);
    b.li(Reg::S0, aa as i64);
    b.li(Reg::S1, bb as i64);
    b.li(Reg::S2, cc as i64);
    b.li(Reg::S3, n as i64);
    b.li(Reg::T0, 0);
    b.li(Reg::A0, 0);
    b.label("loop");
    b.bge(Reg::T0, Reg::S3, "done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T2, Reg::S0, Reg::T1);
    b.ld(Reg::T3, Reg::T2, 0);
    b.add(Reg::T4, Reg::S1, Reg::T1);
    b.ld(Reg::T5, Reg::T4, 0);
    b.add(Reg::T6, Reg::T3, Reg::T5);
    b.add(Reg::A2, Reg::S2, Reg::T1);
    b.sd(Reg::T6, Reg::A2, 0);
    b.add(Reg::A0, Reg::A0, Reg::T6);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("loop");
    b.label("done");
    b.halt();
    Workload::new("vvadd", b.build().expect("vvadd builds"), 20 * n + 10_000)
}

fn branch_chain(name: &str, units: u64, always_taken: bool) -> Workload {
    let mut b = ProgramBuilder::new(name);
    b.li(Reg::A0, 0);
    for k in 0..units {
        let skip = format!("u{k}");
        if always_taken {
            // Taken branch; the cold BHT predicts not-taken → mispredict.
            b.beq(Reg::ZERO, Reg::ZERO, &skip);
            // Wrong-path filler (never retired).
            b.addi(Reg::A0, Reg::A0, 1000);
            b.label(&skip);
        } else {
            // Never-taken branch; the cold BHT predicts correctly. Both
            // variants retire exactly two instructions per unit.
            b.bne(Reg::ZERO, Reg::ZERO, &skip);
            b.label(&skip);
        }
        b.addi(Reg::A0, Reg::A0, 1);
    }
    b.halt();
    Workload::new(
        name,
        b.build().expect("branch chain builds"),
        units * 8 + 1000,
    )
}

/// Serial pointer chase through a Sattolo single-cycle permutation of
/// `slots` cache-line-spaced slots — the maximally stall-heavy
/// Memory-Bound workload: every hop is a dependent load that misses the
/// L1D (the working set is `slots × 64` bytes, ~1 MiB at the default
/// 16384 slots), and nothing else is in flight while it resolves. The
/// long quiescent D$-miss spans make it the stress case for
/// event-driven cycle skipping.
///
/// `a0` ends as the sum of the visited slot indices.
///
/// # Panics
///
/// Panics if `slots < 2` or `hops` is zero.
pub fn ptrchase(slots: u64, hops: u64) -> Workload {
    assert!(slots >= 2, "need at least 2 slots");
    assert!(hops > 0, "need at least one hop");
    let mut b = ProgramBuilder::new("ptrchase");
    // Sattolo's algorithm: a uniformly random *single-cycle*
    // permutation, so the chase visits every slot before repeating and
    // no prefix of the walk ever revisits a line.
    let mut perm: Vec<u64> = (0..slots).collect();
    let mut rng = XorShift::new(0x5eed_0006);
    for i in (1..slots as usize).rev() {
        let j = rng.below(i as u64) as usize;
        perm.swap(i, j);
    }
    // One slot per 64-byte line: word 0 holds the successor index, the
    // remaining 7 words are padding.
    let mut lines = vec![0u64; (slots * 8) as usize];
    for (i, next) in perm.iter().enumerate() {
        lines[i * 8] = *next;
    }
    let base = b.data_u64(&lines);
    b.li(Reg::S0, base as i64);
    b.li(Reg::S1, hops as i64);
    b.li(Reg::T0, 0); // current slot index
    b.li(Reg::A0, 0); // checksum
    b.li(Reg::T2, 0); // hop counter
    b.label("chase_loop");
    b.bge(Reg::T2, Reg::S1, "chase_done");
    b.slli(Reg::T1, Reg::T0, 6); // line-spaced: index → byte offset
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.ld(Reg::T0, Reg::T1, 0); // the dependent miss
    b.add(Reg::A0, Reg::A0, Reg::T0);
    b.addi(Reg::T2, Reg::T2, 1);
    b.j("chase_loop");
    b.label("chase_done");
    b.halt();
    Workload::new(
        "ptrchase",
        b.build().expect("ptrchase builds"),
        20 * hops + 10_000,
    )
}

/// One loop-carried multiply/divide chain over `iters` iterations —
/// the execution-latency stall workload: each iteration regrows the
/// chain value with one `mul`, then pushes it through a run of
/// back-to-back dependent `div`s, and the result feeds the *next*
/// iteration, so even an out-of-order window cannot overlap
/// iterations — the core spends most cycles with the (unpipelined)
/// divider busy and nothing to issue. The divisor is a positive
/// constant, so no division ever traps.
///
/// `a0` ends as the wrapping sum of the chain value after each
/// iteration.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn muldiv(iters: u64) -> Workload {
    assert!(iters > 0, "need at least one iteration");
    let mut b = ProgramBuilder::new("muldiv");
    b.li(Reg::S1, iters as i64);
    b.li(Reg::S3, MULDIV_MUL as i64);
    b.li(Reg::S4, MULDIV_DIV as i64);
    b.li(Reg::A0, 0);
    b.li(Reg::T0, MULDIV_SEED as i64); // the loop-carried chain value
    b.li(Reg::T2, 0); // i
    b.label("md_loop");
    b.bge(Reg::T2, Reg::S1, "md_done");
    b.xor(Reg::T0, Reg::T0, Reg::T2); // fold i into the carried chain
    b.mul(Reg::T0, Reg::T0, Reg::S3); // one regrow, then a pure div chain
    for _ in 0..8 {
        b.div(Reg::T0, Reg::T0, Reg::S4);
    }
    b.add(Reg::A0, Reg::A0, Reg::T0);
    b.addi(Reg::T2, Reg::T2, 1);
    b.j("md_loop");
    b.label("md_done");
    b.halt();
    Workload::new(
        "muldiv",
        b.build().expect("muldiv builds"),
        60 * iters + 10_000,
    )
}

/// The chain re-seed constant of [`muldiv`] (a splitmix64 increment).
const MULDIV_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
/// The multiplier of each [`muldiv`] chain step (odd, so products keep
/// their low-bit entropy).
const MULDIV_MUL: u64 = 0x5_deec_e66d;
/// The divisor of each [`muldiv`] chain step (positive: never traps).
const MULDIV_DIV: u64 = 1337;

/// Case study 2's `brmiss`: a chain of `units` *taken* branch
/// instructions without a loop — every branch executes once against a
/// cold predictor and mispredicts. `a0` counts the units.
pub fn brmiss(units: u64) -> Workload {
    branch_chain("brmiss", units, true)
}

/// Case study 2's `brmiss_inv`: the same chain with every branch
/// inverted (never taken), so the cold not-taken prediction is always
/// correct. Identical retired-instruction count to [`brmiss`].
pub fn brmiss_inv(units: u64) -> Workload {
    branch_chain("brmiss_inv", units, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_isa::Reg;

    #[test]
    fn mergesort_sorts() {
        let s = mergesort(256).execute().unwrap();
        assert_eq!(s.trailing_reg(Reg::A1), 1, "output must be sorted");
        let expected: u64 = XorShift::new(0x5eed_0001)
            .values(256)
            .iter()
            .fold(0u64, |acc, v| acc.wrapping_add(*v));
        assert_eq!(s.trailing_reg(Reg::A0), expected, "checksum must match");
    }

    #[test]
    fn qsort_sorts() {
        let s = qsort(256).execute().unwrap();
        assert_eq!(s.trailing_reg(Reg::A1), 1);
        let expected: u64 = XorShift::new(0x5eed_0002)
            .values(256)
            .iter()
            .fold(0u64, |acc, v| acc.wrapping_add(*v));
        assert_eq!(s.trailing_reg(Reg::A0), expected);
    }

    #[test]
    fn rsort_sorts() {
        let s = rsort(300).execute().unwrap();
        assert_eq!(s.trailing_reg(Reg::A1), 1);
        let mut rng = XorShift::new(0x5eed_0003);
        let expected: u64 = (0..300).map(|_| rng.below(1 << 16)).sum();
        assert_eq!(s.trailing_reg(Reg::A0), expected);
    }

    #[test]
    fn memcpy_copies() {
        let s = memcpy(4096).execute().unwrap();
        let words = 4096 / 8;
        let data = XorShift::new(0x5eed_0004).values(words);
        let expected = data[0]
            .wrapping_add(data[words - 1])
            .wrapping_add(words as u64);
        assert_eq!(s.trailing_reg(Reg::A0), expected);
    }

    #[test]
    fn mm_matches_reference() {
        let dim = 8usize;
        let s = mm(dim as u64).execute().unwrap();
        let a: Vec<f64> = (0..dim * dim)
            .map(|i| ((i % 7) as f64) * 0.5 + 1.0)
            .collect();
        let bm: Vec<f64> = (0..dim * dim)
            .map(|i| ((i % 5) as f64) * 0.25 + 0.5)
            .collect();
        let mut c = vec![0.0f64; dim * dim];
        for i in 0..dim {
            for k in 0..dim {
                let r = a[i * dim + k];
                for j in 0..dim {
                    c[i * dim + j] += r * bm[k * dim + j];
                }
            }
        }
        let mut sum = 0.0f64;
        for v in &c {
            sum += v;
        }
        assert_eq!(s.trailing_reg(Reg::A0), sum.to_bits());
    }

    #[test]
    fn vvadd_sums() {
        let n = 128usize;
        let s = vvadd(n as u64).execute().unwrap();
        let mut rng = XorShift::new(0x5eed_0005);
        let av: Vec<u64> = rng.values(n).iter().map(|v| v & 0xffff).collect();
        let bv: Vec<u64> = rng.values(n).iter().map(|v| v & 0xffff).collect();
        let expected: u64 = av.iter().zip(&bv).map(|(x, y)| x + y).sum();
        assert_eq!(s.trailing_reg(Reg::A0), expected);
    }

    #[test]
    fn branch_chains_match_in_retired_work() {
        let t = brmiss(100).execute().unwrap();
        let i = brmiss_inv(100).execute().unwrap();
        assert_eq!(t.trailing_reg(Reg::A0), 100);
        assert_eq!(i.trailing_reg(Reg::A0), 100);
        // Identical dynamic instruction counts: only prediction differs.
        assert_eq!(t.len(), i.len());
    }

    #[test]
    fn ptrchase_walks_the_permutation() {
        let (slots, hops) = (64u64, 500u64);
        let s = ptrchase(slots, hops).execute().unwrap();
        // Mirror the Sattolo construction and walk it.
        let mut perm: Vec<u64> = (0..slots).collect();
        let mut rng = XorShift::new(0x5eed_0006);
        for i in (1..slots as usize).rev() {
            let j = rng.below(i as u64) as usize;
            perm.swap(i, j);
        }
        let mut index = 0u64;
        let mut sum = 0u64;
        for _ in 0..hops {
            index = perm[index as usize];
            sum = sum.wrapping_add(index);
        }
        assert_eq!(s.trailing_reg(Reg::A0), sum);
        // Sattolo yields a single cycle: the walk returns to slot 0
        // after exactly `slots` hops and not before.
        let mut probe = perm[0];
        let mut steps = 1;
        while probe != 0 {
            probe = perm[probe as usize];
            steps += 1;
        }
        assert_eq!(steps, slots, "permutation must be one cycle");
    }

    #[test]
    fn muldiv_matches_reference() {
        let iters = 200u64;
        let s = muldiv(iters).execute().unwrap();
        let mut sum = 0u64;
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..iters {
            x ^= i;
            x = x.wrapping_mul(0x5_deec_e66d);
            for _ in 0..8 {
                x = (x as i64).wrapping_div(1337) as u64;
            }
            sum = sum.wrapping_add(x);
        }
        assert_eq!(s.trailing_reg(Reg::A0), sum);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn mergesort_rejects_non_power_of_two() {
        let _ = mergesort(100);
    }
}
