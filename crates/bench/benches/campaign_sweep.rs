//! Criterion benchmark of the campaign engine's worker-pool scaling:
//! the same fixed grid swept cold at 1, 2, 4, and 8 worker threads,
//! plus the warm-cache path (which should be near-free regardless of
//! thread count).
//!
//! The throughput unit is campaign cells, so the reported rates compare
//! directly across thread counts. On a single-CPU host the thread
//! counts collapse to sequential execution — run this on a multicore
//! machine to see the scaling curve.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icicle_campaign::{run_campaign, CampaignSpec, CoreSelect, ResultCache, RunOptions};
use icicle_pmu::CounterArch;

/// A grid big enough to keep 8 workers busy but small enough that a
/// cold sweep fits in a benchmark iteration: 6 workloads × 1 core ×
/// 2 archs × 2 seeds = 24 cells.
fn sweep_spec() -> CampaignSpec {
    CampaignSpec::new("bench-sweep")
        .workloads([
            "vvadd",
            "towers",
            "median",
            "multiply",
            "qsort",
            "mergesort",
        ])
        .cores([CoreSelect::Rocket])
        .archs([CounterArch::AddWires, CounterArch::Distributed])
        .seeds([0, 1])
}

fn bench_thread_scaling(c: &mut Criterion) {
    let spec = sweep_spec();
    let cells = spec.cells().len() as u64;
    let mut group = c.benchmark_group("campaign-sweep");
    group.throughput(Throughput::Elements(cells));
    for jobs in [1usize, 2, 4, 8] {
        group.bench_function(format!("cold-{jobs}-threads"), |b| {
            // A fresh cache per iteration keeps every sweep cold.
            b.iter(|| run_campaign(&spec, &RunOptions::with_jobs(jobs)))
        });
    }
    group.finish();
}

fn bench_warm_cache(c: &mut Criterion) {
    let spec = sweep_spec();
    let cells = spec.cells().len() as u64;
    let cache = Arc::new(ResultCache::in_memory());
    // Prime the cache once; the measured runs only pay lookup cost.
    let options = RunOptions {
        jobs: 1,
        cache: Some(Arc::clone(&cache)),
        ..RunOptions::default()
    };
    let primed = run_campaign(&spec, &options);
    assert_eq!(primed.stats.failed, 0, "priming run failed");
    let mut group = c.benchmark_group("campaign-sweep");
    group.throughput(Throughput::Elements(cells));
    group.bench_function("warm-cache", |b| {
        b.iter(|| {
            let report = run_campaign(&spec, &options);
            assert_eq!(report.stats.simulated, 0);
            report
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_thread_scaling, bench_warm_cache
}
criterion_main!(benches);
