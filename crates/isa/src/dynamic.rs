//! Dynamic (executed) instruction records.

use crate::instr::{InstrClass, Op};
use crate::reg::Reg;

/// A data-memory access performed by a dynamic instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Whether the access is a store.
    pub is_store: bool,
}

/// Control-flow outcome of a dynamic instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BranchInfo {
    /// Whether the branch was taken (always true for jumps).
    pub taken: bool,
    /// The byte address control transferred to when taken.
    pub target: u64,
    /// Whether the target comes through a register (indirect).
    pub indirect: bool,
}

/// One executed instruction: the static op plus its architectural outcome.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct DynInstr {
    /// Position in the dynamic stream.
    pub seq: u64,
    /// Byte program counter.
    pub pc: u64,
    /// The static operation.
    pub op: Op,
    /// Data memory access, if any.
    pub mem: Option<MemAccess>,
    /// Control-flow outcome, if the op is a branch or jump.
    pub branch: Option<BranchInfo>,
    /// The byte PC of the next dynamic instruction.
    pub next_pc: u64,
}

impl DynInstr {
    /// The coarse class of the instruction.
    pub fn class(&self) -> InstrClass {
        self.op.class()
    }

    /// Whether control flow diverted from fall-through (`pc + 4`).
    pub fn redirects(&self) -> bool {
        self.next_pc != self.pc + 4
    }
}

/// The architectural execution of a whole program: an ordered stream of
/// [`DynInstr`] records plus final register state.
#[derive(Clone, Debug, Default)]
pub struct DynStream {
    instrs: Vec<DynInstr>,
    final_regs: [u64; 32],
}

impl DynStream {
    pub(crate) fn new(instrs: Vec<DynInstr>, final_regs: [u64; 32]) -> DynStream {
        DynStream { instrs, final_regs }
    }

    /// The executed instructions in program order.
    pub fn instrs(&self) -> &[DynInstr] {
        &self.instrs
    }

    /// Number of dynamic instructions (including the final `halt`).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether nothing executed.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The value of `reg` when the program halted.
    pub fn trailing_reg(&self, reg: Reg) -> u64 {
        self.final_regs[reg.index()]
    }

    /// Iterates over the executed instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInstr> {
        self.instrs.iter()
    }

    /// Counts dynamic instructions in a class.
    pub fn count_class(&self, class: InstrClass) -> usize {
        self.instrs.iter().filter(|d| d.class() == class).count()
    }

    /// The dynamic instruction mix as `(class, count)` pairs sorted by
    /// count, omitting empty classes — the composition table benchmark
    /// reports print.
    pub fn class_mix(&self) -> Vec<(InstrClass, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<InstrClass, usize> = HashMap::new();
        for d in &self.instrs {
            *counts.entry(d.class()).or_insert(0) += 1;
        }
        let mut mix: Vec<(InstrClass, usize)> = counts.into_iter().collect();
        mix.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)))
        });
        mix
    }
}

impl<'a> IntoIterator for &'a DynStream {
    type Item = &'a DynInstr;
    type IntoIter = std::slice::Iter<'a, DynInstr>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mix_counts_and_sorts() {
        let mk = |op: Op, pc: u64| DynInstr {
            seq: 0,
            pc,
            op,
            mem: None,
            branch: None,
            next_pc: pc + 4,
        };
        let stream = DynStream::new(
            vec![
                mk(Op::Nop, 0),
                mk(Op::Nop, 4),
                mk(Op::Fence, 8),
                mk(Op::Halt, 12),
            ],
            [0; 32],
        );
        let mix = stream.class_mix();
        assert_eq!(mix[0], (InstrClass::Alu, 2));
        assert_eq!(mix.len(), 3);
        assert_eq!(stream.count_class(InstrClass::Fence), 1);
    }

    #[test]
    fn redirects_detects_taken_control_flow() {
        let d = DynInstr {
            seq: 0,
            pc: 0x8000_0000,
            op: Op::Nop,
            mem: None,
            branch: None,
            next_pc: 0x8000_0004,
        };
        assert!(!d.redirects());
        let t = DynInstr {
            next_pc: 0x8000_0040,
            ..d
        };
        assert!(t.redirects());
    }
}
