//! The composed two-level memory hierarchy.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::link::{L2Linked, L2Port};
use crate::shared::SharedL2;
use crate::tlb::{Tlb, TlbResult};

/// Configuration of the whole hierarchy.
///
/// The default reproduces the paper's Table IV common configuration:
/// 32 KiB 8-way 64 B L1I and L1D, 512 KiB 8-way 64 B L2, no LLC.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HierarchyConfig {
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    /// Shared L2; `None` sends L1 misses straight to DRAM.
    pub l2: Option<CacheConfig>,
    /// Flat DRAM access latency in cycles (the paper uses FASED-modelled
    /// DRAM; a flat latency preserves the hit/miss cost structure).
    pub dram_latency: u64,
    /// First-level ITLB entries.
    pub itlb_entries: usize,
    /// First-level DTLB entries.
    pub dtlb_entries: usize,
    /// Shared second-level TLB entries.
    pub l2_tlb_entries: usize,
    /// Added latency when the L1 TLB misses but the L2 TLB hits.
    pub l2_tlb_latency: u64,
    /// Added latency of a full page walk.
    pub walk_latency: u64,
    /// Whether the I-side next-line prefetcher is enabled.
    pub icache_prefetch: bool,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig {
                hit_latency: 1,
                ..CacheConfig::l1_default()
            },
            l1d: CacheConfig::l1_default(),
            l2: Some(CacheConfig::l2_default()),
            dram_latency: 80,
            itlb_entries: 32,
            dtlb_entries: 32,
            l2_tlb_entries: 512,
            l2_tlb_latency: 8,
            walk_latency: 60,
            icache_prefetch: true,
        }
    }
}

/// Outcome of one hierarchy access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Whether the L1 (I or D) hit.
    pub l1_hit: bool,
    /// Whether the L2 hit (meaningless when `l1_hit`).
    pub l2_hit: bool,
    /// Cycle at which the data is available to the pipeline.
    pub ready_cycle: u64,
    /// TLB lookup outcome.
    pub tlb: TlbResult,
    /// Whether the fill evicted a dirty block (`D$-release`).
    pub writeback: bool,
}

impl AccessResult {
    /// Total latency relative to the request cycle.
    pub fn latency(&self, now: u64) -> u64 {
        self.ready_cycle.saturating_sub(now)
    }
}

/// Aggregate statistics of the hierarchy.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct HierarchyStats {
    pub l1i: CacheStats,
    pub l1d: CacheStats,
    pub l2: CacheStats,
    pub itlb_misses: u64,
    pub dtlb_misses: u64,
    pub l2_tlb_misses: u64,
    pub icache_prefetches: u64,
}

#[derive(Clone, Debug)]
enum L2Backend {
    None,
    Private(Cache),
    Shared(SharedL2),
}

/// A two-level cache hierarchy with TLBs and flat DRAM.
///
/// All methods take the current cycle and return an [`AccessResult`] whose
/// `ready_cycle` the core uses for scheduling; the hierarchy itself holds
/// no notion of time beyond what callers pass in, so it composes with both
/// the in-order and out-of-order core models. The L2 may be private or
/// [shared with other cores](MemoryHierarchy::with_shared_l2).
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: L2Backend,
    /// When present, shared-L2 traffic goes through this PDES port
    /// instead of straight at the shared cache (see [`L2Linked`]).
    l2_port: Option<L2Port>,
    itlb: Tlb,
    dtlb: Tlb,
    l2_tlb: Tlb,
    stats_extra: HierarchyStats,
    address_salt: u64,
}

impl MemoryHierarchy {
    /// Creates a cold hierarchy with a private L2 (or none).
    pub fn new(config: HierarchyConfig) -> MemoryHierarchy {
        let l2 = match config.l2 {
            Some(cfg) => L2Backend::Private(Cache::new(cfg)),
            None => L2Backend::None,
        };
        MemoryHierarchy::with_l2(config, l2)
    }

    /// Creates a cold hierarchy whose L2 is shared with other cores (the
    /// `l2` field of `config` is ignored in favour of the shared cache).
    pub fn with_shared_l2(config: HierarchyConfig, shared: SharedL2) -> MemoryHierarchy {
        MemoryHierarchy::with_l2(config, L2Backend::Shared(shared))
    }

    fn with_l2(config: HierarchyConfig, l2: L2Backend) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2,
            l2_port: None,
            itlb: Tlb::new(config.itlb_entries),
            dtlb: Tlb::new(config.dtlb_entries),
            l2_tlb: Tlb::new(config.l2_tlb_entries),
            stats_extra: HierarchyStats::default(),
            address_salt: 0,
            config,
        }
    }

    /// Gives this hierarchy a distinct physical address space.
    ///
    /// Workloads are interpreted independently, so two cores' programs
    /// occupy the *same* virtual addresses; on a shared L2 they would
    /// falsely share (and helpfully prefetch!) each other's lines. The
    /// salt is XORed into every address above the index bits — the
    /// moral equivalent of each process getting its own physical pages.
    pub fn with_address_salt(mut self, salt: u64) -> MemoryHierarchy {
        self.address_salt = salt;
        self
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Accumulated statistics. For a shared L2 the `l2` entry aggregates
    /// every sharer's traffic.
    pub fn stats(&self) -> HierarchyStats {
        let l2 = match &self.l2 {
            L2Backend::None => CacheStats::default(),
            L2Backend::Private(c) => c.stats(),
            L2Backend::Shared(s) => s.stats(),
        };
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2,
            ..self.stats_extra
        }
    }

    fn tlb_lookup(&mut self, addr: u64, is_instr: bool) -> (TlbResult, u64) {
        let l1 = if is_instr {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        if l1.access(addr) {
            return (TlbResult::L1Hit, 0);
        }
        if is_instr {
            self.stats_extra.itlb_misses += 1;
        } else {
            self.stats_extra.dtlb_misses += 1;
        }
        if self.l2_tlb.access(addr) {
            (TlbResult::L2Hit, self.config.l2_tlb_latency)
        } else {
            self.stats_extra.l2_tlb_misses += 1;
            (TlbResult::Walk, self.config.walk_latency)
        }
    }

    fn refill(&mut self, l1_is_instr: bool, addr: u64, now: u64, is_store: bool) -> AccessResult {
        let (l2_hit, mem_latency) = match &mut self.l2 {
            L2Backend::Private(l2) => {
                if l2.access(addr, false) {
                    (true, l2.config().hit_latency)
                } else {
                    l2.fill(addr, false);
                    (false, l2.config().hit_latency + self.config.dram_latency)
                }
            }
            L2Backend::Shared(shared) => {
                let (hit, latency) = match &self.l2_port {
                    Some(port) => port.access(addr, now),
                    None => shared.access(addr, now),
                };
                if hit {
                    (true, latency)
                } else {
                    (false, latency + self.config.dram_latency)
                }
            }
            L2Backend::None => (false, self.config.dram_latency),
        };
        let l1 = if l1_is_instr {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let writeback = l1.fill(addr, is_store).is_some();
        AccessResult {
            l1_hit: false,
            l2_hit,
            ready_cycle: now + l1.config().hit_latency + mem_latency,
            tlb: TlbResult::L1Hit, // caller overrides
            writeback,
        }
    }

    /// Instruction fetch of the block containing `addr`.
    pub fn fetch(&mut self, addr: u64, now: u64) -> AccessResult {
        let addr = addr ^ self.address_salt;
        let (tlb, tlb_latency) = self.tlb_lookup(addr, true);
        let mut result = if self.l1i.access(addr, false) {
            AccessResult {
                l1_hit: true,
                l2_hit: false,
                ready_cycle: now + self.config.l1i.hit_latency,
                tlb,
                writeback: false,
            }
        } else {
            let mut r = self.refill(true, addr, now, false);
            if self.config.icache_prefetch {
                // Next-line prefetch: bring in the sequential successor so a
                // streaming fetch stream sees at most one demand miss per
                // two blocks (the paper's Frontend notes a prefetcher can
                // request blocks before use).
                let next = (addr / self.config.l1i.block_bytes + 1) * self.config.l1i.block_bytes;
                if !self.l1i.peek(next) {
                    self.stats_extra.icache_prefetches += 1;
                    match &mut self.l2 {
                        L2Backend::Private(l2) => {
                            if !l2.access(next, false) {
                                l2.fill(next, false);
                            }
                        }
                        L2Backend::Shared(shared) => {
                            let _ = match &self.l2_port {
                                Some(port) => port.access(next, now),
                                None => shared.access(next, now),
                            };
                        }
                        L2Backend::None => {}
                    }
                    self.l1i.fill(next, false);
                }
            }
            r.tlb = tlb;
            r
        };
        result.tlb = tlb;
        result.ready_cycle += tlb_latency;
        result
    }

    /// Data load at `addr`.
    pub fn load(&mut self, addr: u64, now: u64) -> AccessResult {
        self.data_access(addr, now, false)
    }

    /// Data store at `addr`.
    pub fn store(&mut self, addr: u64, now: u64) -> AccessResult {
        self.data_access(addr, now, true)
    }

    fn data_access(&mut self, addr: u64, now: u64, is_store: bool) -> AccessResult {
        let addr = addr ^ self.address_salt;
        let (tlb, tlb_latency) = self.tlb_lookup(addr, false);
        let mut result = if self.l1d.access(addr, is_store) {
            AccessResult {
                l1_hit: true,
                l2_hit: false,
                ready_cycle: now + self.config.l1d.hit_latency,
                tlb,
                writeback: false,
            }
        } else {
            let mut r = self.refill(false, addr, now, is_store);
            r.tlb = tlb;
            r
        };
        result.tlb = tlb;
        result.ready_cycle += tlb_latency;
        result
    }

    /// Probes the L1D for `addr` without perturbing state (used by issue
    /// logic to decide whether an access would need an MSHR).
    pub fn peek_data(&self, addr: u64) -> bool {
        self.l1d.peek(addr ^ self.address_salt)
    }

    /// Invalidates the instruction cache (models `fence.i`).
    pub fn flush_icache(&mut self) {
        self.l1i.flush_all();
    }
}

impl L2Linked for MemoryHierarchy {
    fn attach_l2_port(&mut self, port: L2Port) {
        self.l2_port = Some(port);
    }

    fn detach_l2_port(&mut self) {
        self.l2_port = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_miss_costs_more_than_warm_hit() {
        let mut m = small();
        let cold = m.load(0x9000_0000, 0);
        assert!(!cold.l1_hit);
        assert!(!cold.l2_hit);
        assert!(cold.latency(0) >= m.config().dram_latency);
        let warm = m.load(0x9000_0000, 1000);
        assert!(warm.l1_hit);
        assert_eq!(warm.latency(1000), m.config().l1d.hit_latency);
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        // Tiny L1D so we can evict easily.
        let cfg = HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 128,
                ways: 1,
                block_bytes: 64,
                hit_latency: 1,
            },
            ..HierarchyConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        m.load(0x9000_0000, 0); // fills L1D + L2
        m.load(0x9002_0000, 0); // conflicting set, evicts from L1D
        let back = m.load(0x9000_0000, 1000);
        assert!(!back.l1_hit);
        assert!(back.l2_hit);
        assert!(back.latency(1000) < cfg.dram_latency);
    }

    #[test]
    fn fetch_and_load_use_separate_l1s() {
        let mut m = small();
        m.fetch(0x8000_0000, 0);
        let d = m.load(0x8000_0000, 100);
        assert!(!d.l1_hit, "data side should not hit on an I-side fill");
    }

    #[test]
    fn prefetcher_hides_sequential_fetches() {
        let mut m = small();
        let miss = m.fetch(0x8000_0000, 0);
        assert!(!miss.l1_hit);
        // The next 64 B block was prefetched.
        let seq = m.fetch(0x8000_0040, miss.ready_cycle);
        assert!(seq.l1_hit);
        assert_eq!(m.stats().icache_prefetches, 1);
    }

    #[test]
    fn prefetch_can_be_disabled() {
        let cfg = HierarchyConfig {
            icache_prefetch: false,
            ..HierarchyConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        m.fetch(0x8000_0000, 0);
        let seq = m.fetch(0x8000_0040, 500);
        assert!(!seq.l1_hit);
        assert_eq!(m.stats().icache_prefetches, 0);
    }

    #[test]
    fn tlb_walk_adds_latency() {
        let mut m = small();
        let first = m.load(0x9000_0000, 0);
        assert_eq!(first.tlb, TlbResult::Walk);
        let warm = m.load(0x9000_0008, 1000);
        assert_eq!(warm.tlb, TlbResult::L1Hit);
        assert!(first.latency(0) > m.config().dram_latency);
        assert_eq!(m.stats().dtlb_misses, 1);
        assert_eq!(m.stats().l2_tlb_misses, 1);
    }

    #[test]
    fn flush_icache_forces_refetch() {
        let mut m = small();
        m.fetch(0x8000_0000, 0);
        assert!(m.fetch(0x8000_0000, 100).l1_hit);
        m.flush_icache();
        assert!(!m.fetch(0x8000_0000, 200).l1_hit);
    }

    #[test]
    fn no_l2_goes_straight_to_dram() {
        let cfg = HierarchyConfig {
            l2: None,
            ..HierarchyConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        let r = m.load(0x9000_0000, 0);
        assert!(!r.l2_hit);
        assert_eq!(m.stats().l2, CacheStats::default());
    }

    #[test]
    fn writeback_surfaces_on_dirty_eviction() {
        let cfg = HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 64,
                ways: 1,
                block_bytes: 64,
                hit_latency: 1,
            },
            ..HierarchyConfig::default()
        };
        let mut m = MemoryHierarchy::new(cfg);
        m.store(0x9000_0000, 0);
        let evicting = m.load(0x9100_0000, 100);
        assert!(evicting.writeback);
        assert_eq!(m.stats().l1d.writebacks, 1);
    }
}
