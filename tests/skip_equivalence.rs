//! The cycle-skipping equivalence proof harness.
//!
//! Event-driven cycle skipping (`SkipPolicy::On`) is only admissible if
//! it is *unobservable* in every simulated quantity: final counter
//! state, per-cell cycles and instret, TMA classifications, slot
//! timelines, and every byte of every rendered report. This suite runs
//! the verify matrix, the seeded fuzzer, a cache-less campaign, and the
//! timeline exporter in both modes and diffs the outputs byte-for-byte.
//! A fuzz divergence is shrunk to a minimal reproducer before the test
//! panics, so a failure here is directly actionable.
//!
//! The sub-grid below is deliberately stall-heavy (`ptrchase` misses the
//! D-cache on every hop, `muldiv` serializes on the long-latency unit):
//! those are the cells where fast-forwarded spans dominate, so they are
//! where an unsound skip would actually diverge. Set `ICICLE_SKIP_FULL=1`
//! to widen the sweep to the full 135-cell default matrix plus a
//! 100-case dual-mode fuzz run (the CI skip-equivalence job does).

use std::sync::OnceLock;

use icicle::campaign::{run_campaign, CampaignSpec, CellSpec, CoreSelect, RunOptions};
use icicle::pmu::CounterArch;
use icicle::prelude::{
    Boom, BoomConfig, BoomSize, Perf, PerfOptions, Rocket, RocketConfig, SkipPolicy,
};
use icicle::verify::{
    default_matrix, export_cell_timeline_with, run_fuzz, run_matrix, verify_workload_with,
    FuzzCase, FuzzOptions, MatrixOptions,
};
use icicle::workloads::micro;

/// Stall-heavy sub-grid: 4 workloads x 2 cores x 2 archs = 16 cells.
fn sub_grid() -> CampaignSpec {
    CampaignSpec::new("skip-equivalence")
        .workloads(["vvadd", "qsort", "ptrchase", "muldiv"])
        .cores([CoreSelect::Rocket, CoreSelect::Boom(BoomSize::Small)])
        .archs([CounterArch::AddWires, CounterArch::Distributed])
}

/// The skip-off rendering of the sub-grid, computed once: `(to_json,
/// snapshot)`. Every dual-mode test diffs against these bytes.
fn skip_off_baseline() -> &'static (String, String) {
    static BASELINE: OnceLock<(String, String)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let report = run_matrix(
            &sub_grid(),
            &MatrixOptions {
                skip: Some(SkipPolicy::Off),
                ..MatrixOptions::default()
            },
        );
        assert!(
            report.passed(),
            "the skip-off sub-grid must verify before equivalence means anything:\n{}",
            report.to_json()
        );
        (report.to_json(), report.snapshot())
    })
}

#[test]
fn skip_on_matrix_is_byte_identical_to_skip_off() {
    let (off_json, off_snapshot) = skip_off_baseline();
    let on = run_matrix(
        &sub_grid(),
        &MatrixOptions {
            skip: Some(SkipPolicy::On),
            ..MatrixOptions::default()
        },
    );
    assert_eq!(
        &on.to_json(),
        off_json,
        "skip-on matrix JSON diverged from skip-off"
    );
    assert_eq!(
        &on.snapshot(),
        off_snapshot,
        "skip-on matrix snapshot diverged from skip-off"
    );
}

#[test]
fn equivalence_holds_at_any_worker_count() {
    let (off_json, off_snapshot) = skip_off_baseline();
    for jobs in [2, 4] {
        let on = run_matrix(
            &sub_grid(),
            &MatrixOptions {
                jobs,
                skip: Some(SkipPolicy::On),
                ..MatrixOptions::default()
            },
        );
        assert_eq!(&on.to_json(), off_json, "jobs={jobs}");
        assert_eq!(&on.snapshot(), off_snapshot, "jobs={jobs}");
    }
}

#[test]
fn per_cell_counters_and_instret_match_exactly() {
    // Direct harness runs, no differential in the way: every field the
    // perf session settles in bulk must land on the same value it would
    // have accumulated cycle-by-cycle.
    let workloads = [micro::ptrchase(1024, 2_000), micro::muldiv(500)];
    for workload in &workloads {
        for arch in [CounterArch::AddWires, CounterArch::Distributed] {
            let run = |skip: SkipPolicy, boom: bool| {
                let stream = workload.execute().expect("architectural execution");
                let options = PerfOptions {
                    arch,
                    skip,
                    ..PerfOptions::default()
                };
                if boom {
                    let mut core = Boom::new(BoomConfig::small(), stream, workload.program_arc());
                    Perf::with_options(options).run(&mut core).expect("measure")
                } else {
                    let mut core = Rocket::new(RocketConfig::default(), stream);
                    Perf::with_options(options).run(&mut core).expect("measure")
                }
            };
            for boom in [false, true] {
                let off = run(SkipPolicy::Off, boom);
                let on = run(SkipPolicy::On, boom);
                let tag = format!(
                    "{}/{}/{arch:?}",
                    workload.name(),
                    if boom { "small-boom" } else { "rocket" }
                );
                assert_eq!(off.cycles, on.cycles, "{tag}: cycles");
                assert_eq!(off.instret, on.instret, "{tag}: instret");
                assert_eq!(off.hw_counts, on.hw_counts, "{tag}: hardware counters");
                assert_eq!(
                    off.perfect_counts, on.perfect_counts,
                    "{tag}: perfect counts"
                );
                assert_eq!(
                    format!("{off}"),
                    format!("{on}"),
                    "{tag}: rendered report (TMA/TLB rollups)"
                );
            }
        }
    }
}

#[test]
fn slot_timelines_are_byte_identical() {
    // The trace ring is settled via `record_many` inside skipped spans;
    // the exported Chrome trace document must not be able to tell.
    let cells = [
        ("ptrchase", CoreSelect::Rocket, CounterArch::AddWires),
        (
            "muldiv",
            CoreSelect::Boom(BoomSize::Small),
            CounterArch::Distributed,
        ),
    ];
    for (workload, core, arch) in cells {
        let cell = CellSpec {
            workload: workload.to_string(),
            core,
            arch,
            seed: 0,
            repeat: 0,
            max_cycles: 10_000_000,
        };
        let off = export_cell_timeline_with(&cell, Some(256), Some(SkipPolicy::Off))
            .expect("skip-off export");
        let on = export_cell_timeline_with(&cell, Some(256), Some(SkipPolicy::On))
            .expect("skip-on export");
        assert_eq!(
            off.render(),
            on.render(),
            "{}: timeline diverged between modes",
            cell.label()
        );
    }
}

#[test]
fn campaign_reports_are_byte_identical_without_cache() {
    // `cache: None` forces both runs to actually simulate: the skip-free
    // fingerprint would otherwise let the second run serve the first
    // run's bytes and the comparison would prove nothing.
    let run = |skip| {
        run_campaign(
            &sub_grid(),
            &RunOptions {
                cache: None,
                skip: Some(skip),
                ..RunOptions::default()
            },
        )
        .to_json()
    };
    assert_eq!(
        run(SkipPolicy::Off),
        run(SkipPolicy::On),
        "campaign JSON diverged between modes"
    );
}

/// Cross-mode greedy shrink: like `icicle_verify::shrink`, but the
/// property preserved is "skip-on and skip-off disagree" rather than
/// "the differential bound fails". Built from the same public
/// [`FuzzCase`] machinery (drop ops, halve iterations, shrink the data
/// table) so a reproducer is as small as the fuzzer's own.
fn shrink_cross_mode(case: &FuzzCase, options: &FuzzOptions) -> (FuzzCase, u32) {
    fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
        let mut out = Vec::new();
        for drop in 0..case.ops.len() {
            if case.ops.len() > 1 {
                let mut c = case.clone();
                c.ops.remove(drop);
                out.push(c);
            }
        }
        if case.iterations > 1 {
            let mut c = case.clone();
            c.iterations /= 2;
            out.push(c);
        }
        if case.table.len() > 1 {
            let mut c = case.clone();
            c.table.truncate(case.table.len() / 2);
            out.push(c);
        }
        out
    }
    let mut current = case.clone();
    let mut steps = 0u32;
    let mut attempts = 0u32;
    'outer: loop {
        for candidate in candidates(&current) {
            attempts += 1;
            if attempts > 200 {
                break 'outer;
            }
            if modes_disagree(&candidate, options) {
                current = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Runs `case` through the differential in both modes and reports
/// whether any rendered byte differs.
fn modes_disagree(case: &FuzzCase, options: &FuzzOptions) -> bool {
    let verdict = |skip| {
        let workload = case.workload();
        let cell = CellSpec {
            workload: workload.name().to_string(),
            core: options.core,
            arch: options.arch,
            seed: case.seed,
            repeat: 0,
            max_cycles: options.max_cycles,
        };
        verify_workload_with(&workload, &cell, options.flat_bound, Some(skip))
            .map(|v| v.to_json().render())
    };
    verdict(SkipPolicy::Off) != verdict(SkipPolicy::On)
}

fn fuzz_both_modes(cases: u64, seed: u64) {
    let options = |skip| FuzzOptions {
        cases,
        seed,
        skip: Some(skip),
        ..FuzzOptions::default()
    };
    let off = run_fuzz(&options(SkipPolicy::Off));
    let on = run_fuzz(&options(SkipPolicy::On));
    if off.to_json() == on.to_json() {
        return;
    }
    // The aggregate reports disagree: find the first diverging case and
    // shrink it so the failure message is a minimal reproducer.
    let hunt = options(SkipPolicy::Off);
    for index in 0..cases {
        let case = FuzzCase::generate(seed, index);
        if !modes_disagree(&case, &hunt) {
            continue;
        }
        let (shrunk, steps) = shrink_cross_mode(&case, &hunt);
        panic!(
            "skip-on diverged from skip-off on fuzz case {} — after {steps} shrink \
             steps the minimal reproducer is {}",
            case.describe(),
            shrunk.describe()
        );
    }
    panic!(
        "fuzz reports diverged between modes but no single case did; \
         off:\n{}\non:\n{}",
        off.to_json(),
        on.to_json()
    );
}

#[test]
fn fuzzed_cases_are_byte_identical_across_modes() {
    fuzz_both_modes(60, 2026);
}

#[test]
fn skip_spans_actually_occur_on_the_sub_grid() {
    // Guard against vacuity: the equivalence above only means something
    // if skip-on genuinely fast-forwards. A pointer chase that misses
    // the D-cache on every hop must expose multi-cycle quiescent spans.
    use icicle::events::EventCore;
    let workload = micro::ptrchase(1024, 500);
    let stream = workload.execute().expect("architectural execution");
    let mut core = Rocket::new(RocketConfig::default(), stream);
    let mut best = 0u64;
    while !core.is_done() && core.cycle() < 100_000 {
        if let Some(n) = core.time_until_next_event() {
            best = best.max(n);
        }
        core.step();
    }
    assert!(
        best >= 2,
        "ptrchase never exposed a skippable span (best claim {best}); \
         the equivalence suite is vacuous"
    );
}

#[test]
fn full_matrix_and_fuzz_sweep_when_requested() {
    if std::env::var("ICICLE_SKIP_FULL").is_err() {
        eprintln!("skipping full-matrix dual-mode sweep (set ICICLE_SKIP_FULL=1)");
        return;
    }
    let spec = default_matrix();
    let run = |skip| {
        let report = run_matrix(
            &spec,
            &MatrixOptions {
                jobs: 4,
                skip: Some(skip),
                ..MatrixOptions::default()
            },
        );
        (report.to_json(), report.snapshot())
    };
    let off = run(SkipPolicy::Off);
    let on = run(SkipPolicy::On);
    assert_eq!(off.0, on.0, "full matrix JSON diverged between modes");
    assert_eq!(off.1, on.1, "full matrix snapshot diverged between modes");
    fuzz_both_modes(100, 7);
}
