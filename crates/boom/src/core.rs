//! The BOOM out-of-order pipeline timing model.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use icicle_events::{EventCore, EventId, EventVector};
use icicle_isa::{DynStream, InstrClass, MemAccess, Op, Program, RegId};
use icicle_mem::{L2Linked, L2Port, MemoryHierarchy, MshrFile};

use crate::config::{BoomConfig, PredictorKind};
use crate::predictor::{BoomBtb, Gshare};
use crate::tage::Tage;
use icicle_rocket::{is_call, is_return, ReturnAddressStack};

type UopId = u64;

/// Why a control-flow µop will flush at resolution.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Mispredict {
    Direction,
    Target,
}

#[derive(Clone, Debug)]
struct Uop {
    id: UopId,
    /// Index into the dynamic stream; `None` for wrong-path µops.
    stream_idx: Option<usize>,
    pc: u64,
    class: InstrClass,
    dst: Option<RegId>,
    /// Producer µops still in flight at dispatch time.
    deps: Deps,
    mem: Option<MemAccess>,
    mispredict: Option<Mispredict>,
    is_fence_i: bool,
    issued: bool,
    /// `u64::MAX` until the µop has issued.
    complete_cycle: u64,
}

impl Uop {
    fn complete(&self, now: u64) -> bool {
        self.issued && self.complete_cycle <= now
    }
}

/// Producer dependences of a µop, stored inline: an operation reads at
/// most two registers, so a µop can depend on at most two in-flight
/// writers and a heap-backed list is never needed.
#[derive(Copy, Clone, Debug)]
struct Deps {
    ids: [UopId; 2],
    len: u8,
}

impl Deps {
    fn new() -> Deps {
        Deps {
            ids: [0; 2],
            len: 0,
        }
    }

    fn push(&mut self, id: UopId) {
        self.ids[self.len as usize] = id;
        self.len += 1;
    }

    fn as_slice(&self) -> &[UopId] {
        &self.ids[..self.len as usize]
    }
}

/// The in-flight µop table, indexed by [`UopId`].
///
/// Ids are allocated monotonically in fetch order and dispatched in that
/// same order, so the live set is always a sliding window of recent ids
/// (bounded by the ROB plus squash gaps). A deque of slots over a moving
/// `base` makes every lookup an index subtraction instead of a hash —
/// this table is touched several times per issue port per cycle, where a
/// `HashMap` shows up prominently in profiles.
///
/// Squashes leave id gaps (fetch-buffer µops consume ids but never
/// dispatch): `insert` pads them with empty slots and `remove` trims
/// dead slots off both edges to keep the window tight.
#[derive(Clone, Debug, Default)]
struct UopArena {
    base: UopId,
    slots: VecDeque<Option<Uop>>,
}

impl UopArena {
    fn slot_of(&self, id: UopId) -> Option<usize> {
        if id < self.base {
            return None;
        }
        let idx = (id - self.base) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    fn get(&self, id: UopId) -> Option<&Uop> {
        self.slot_of(id).and_then(|i| self.slots[i].as_ref())
    }

    fn get_mut(&mut self, id: UopId) -> Option<&mut Uop> {
        match self.slot_of(id) {
            Some(i) => self.slots[i].as_mut(),
            None => None,
        }
    }

    fn contains(&self, id: UopId) -> bool {
        self.get(id).is_some()
    }

    fn insert(&mut self, u: Uop) {
        let id = u.id;
        if self.slots.is_empty() {
            self.base = id;
        }
        debug_assert!(
            id >= self.base + self.slots.len() as UopId,
            "µop ids must be inserted in increasing order"
        );
        while (self.slots.len() as UopId) < id - self.base {
            self.slots.push_back(None);
        }
        self.slots.push_back(Some(u));
    }

    fn remove(&mut self, id: UopId) -> Option<Uop> {
        let idx = self.slot_of(id)?;
        let u = self.slots[idx].take();
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
        }
        u
    }
}

impl std::ops::Index<UopId> for UopArena {
    type Output = Uop;

    fn index(&self, id: UopId) -> &Uop {
        self.get(id).expect("µop not in flight")
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum FetchState {
    Starting,
    Waiting { ready: u64 },
    Drained,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum IqKind {
    Int,
    Mem,
    Fp,
}

fn iq_of(class: InstrClass) -> IqKind {
    match class {
        InstrClass::Load
        | InstrClass::Store
        | InstrClass::Amo
        | InstrClass::FpLoad
        | InstrClass::FpStore => IqKind::Mem,
        InstrClass::FpAlu | InstrClass::FpMul | InstrClass::FpDiv => IqKind::Fp,
        _ => IqKind::Int,
    }
}

/// The cycle-level BOOM core model.
///
/// Construct with a [`BoomConfig`], the architectural [`DynStream`], and
/// the [`Program`] text (needed to synthesize wrong-path µops after a
/// misprediction), then drive it through [`EventCore`].
#[derive(Clone, Debug)]
enum Predictor {
    Gshare(Gshare),
    Tage(Tage),
}

impl Predictor {
    fn predict(&self, pc: u64) -> bool {
        match self {
            Predictor::Gshare(p) => p.predict(pc),
            Predictor::Tage(p) => p.predict(pc),
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        match self {
            Predictor::Gshare(p) => p.update(pc, taken),
            Predictor::Tage(p) => p.update(pc, taken),
        }
    }
}

#[derive(Debug)]
pub struct Boom {
    config: BoomConfig,
    mem: MemoryHierarchy,
    mshrs: MshrFile,
    predictor: Predictor,
    btb: BoomBtb,
    ras: ReturnAddressStack,
    stream: DynStream,
    program: Arc<Program>,

    cycle: u64,
    done: bool,
    instret: u64,
    next_uop_id: UopId,
    last_commit_cycle: u64,

    // Front-end
    fetch_state: FetchState,
    fetch_seq: usize,
    fetch_allowed: u64,
    refill_until: u64,
    recovering: bool,
    wrong_path: bool,
    wp_pc: u64,
    fb: VecDeque<Uop>,

    // Back-end
    uops: UopArena,
    rob: VecDeque<UopId>,
    iq_int: VecDeque<UopId>,
    iq_mem: VecDeque<UopId>,
    iq_fp: VecDeque<UopId>,
    rename: [Option<UopId>; RegId::COUNT],
    loads_in_rob: usize,
    stores_in_rob: usize,
    inflight_loads: Vec<(UopId, u64, u64)>, // (id, addr, size)
    pending_branch_flushes: Vec<(u64, UopId)>, // (resolve cycle, uop)
    div_busy_until: u64,
    fp_div_busy_until: u64,
    fence_in_rob: bool,
    fence_head_since: Option<u64>,
    halt_dispatched: bool,
    /// PCs of loads that have caused ordering violations (the
    /// store-set-style memory dependence predictor's training state).
    violating_loads: HashSet<u64>,
    /// Reused across squashes so a flush does not allocate.
    squash_scratch: Vec<UopId>,

    retired_pcs: Vec<u64>,

    // Per-cycle bookkeeping for derived events
    issued_this_cycle: usize,

    events: EventVector,
}

impl Boom {
    /// Creates a core positioned at the first instruction of `stream`.
    ///
    /// The program is accepted as anything convertible to an
    /// `Arc<Program>`: passing an owned [`Program`] still works, while
    /// callers that run many measurements over the same workload can
    /// share one `Arc` and skip the per-run copy of the text and data
    /// image.
    pub fn new(config: BoomConfig, stream: DynStream, program: impl Into<Arc<Program>>) -> Boom {
        let mem = MemoryHierarchy::new(config.memory);
        Boom::with_memory(config, stream, program, mem)
    }

    /// Creates a core over an explicit memory hierarchy (used by SoC
    /// configurations with a shared L2).
    pub fn with_memory(
        config: BoomConfig,
        stream: DynStream,
        program: impl Into<Arc<Program>>,
        mem: MemoryHierarchy,
    ) -> Boom {
        Boom {
            mem,
            mshrs: MshrFile::new(config.n_mshrs),
            predictor: match config.predictor {
                PredictorKind::Tage => Predictor::Tage(Tage::new(config.predictor_entries)),
                PredictorKind::Gshare => Predictor::Gshare(Gshare::new(config.predictor_entries)),
            },
            btb: BoomBtb::new(config.btb_entries),
            ras: ReturnAddressStack::new(config.ras_entries),
            stream,
            program: program.into(),
            cycle: 0,
            done: false,
            instret: 0,
            next_uop_id: 0,
            last_commit_cycle: 0,
            fetch_state: FetchState::Starting,
            fetch_seq: 0,
            fetch_allowed: 0,
            refill_until: 0,
            recovering: false,
            wrong_path: false,
            wp_pc: 0,
            fb: VecDeque::with_capacity(config.fetch_buffer_entries),
            uops: UopArena::default(),
            rob: VecDeque::with_capacity(config.rob_entries),
            iq_int: VecDeque::new(),
            iq_mem: VecDeque::new(),
            iq_fp: VecDeque::new(),
            rename: [None; RegId::COUNT],
            loads_in_rob: 0,
            stores_in_rob: 0,
            inflight_loads: Vec::new(),
            pending_branch_flushes: Vec::new(),
            div_busy_until: 0,
            fp_div_busy_until: 0,
            fence_in_rob: false,
            fence_head_since: None,
            halt_dispatched: false,
            violating_loads: HashSet::new(),
            squash_scratch: Vec::new(),
            retired_pcs: Vec::with_capacity(8),
            issued_this_cycle: 0,
            events: EventVector::new(),
            config,
        }
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &BoomConfig {
        &self.config
    }

    /// Retired (on-path) instructions so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.instret as f64 / self.cycle as f64
        }
    }

    /// The memory hierarchy (for statistics).
    pub fn mem(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Runs to completion, bounded by `max_cycles`.
    ///
    /// Returns the final cycle count, or `None` if the bound was hit.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> Option<u64> {
        while !self.done {
            if self.cycle >= max_cycles {
                return None;
            }
            self.step();
        }
        Some(self.cycle)
    }

    fn alloc_id(&mut self) -> UopId {
        let id = self.next_uop_id;
        self.next_uop_id += 1;
        id
    }

    // --- Flush machinery ---------------------------------------------------

    /// Squashes every µop with `id > cut` (or `>= cut` when `inclusive`).
    fn squash_younger(&mut self, cut: UopId, inclusive: bool) {
        let keep = |id: UopId| if inclusive { id < cut } else { id <= cut };
        let mut removed = std::mem::take(&mut self.squash_scratch);
        removed.clear();
        removed.extend(self.rob.iter().copied().filter(|&id| !keep(id)));
        self.rob.retain(|&id| keep(id));
        self.iq_int.retain(|&id| keep(id));
        self.iq_mem.retain(|&id| keep(id));
        self.iq_fp.retain(|&id| keep(id));
        self.inflight_loads.retain(|&(id, _, _)| keep(id));
        self.pending_branch_flushes.retain(|&(_, id)| keep(id));
        for &id in &removed {
            if let Some(u) = self.uops.remove(id) {
                match u.class {
                    InstrClass::Load | InstrClass::FpLoad | InstrClass::Amo => {
                        self.loads_in_rob -= 1
                    }
                    InstrClass::Store | InstrClass::FpStore => self.stores_in_rob -= 1,
                    InstrClass::Fence => self.fence_in_rob = false,
                    _ => {}
                }
            }
        }
        removed.clear();
        self.squash_scratch = removed;
        self.fb.clear();
        // Rebuild the rename table from the surviving ROB, oldest first.
        self.rename = [None; RegId::COUNT];
        for &id in &self.rob {
            if let Some(dst) = self.uops[id].dst {
                self.rename[dst.index()] = Some(id);
            }
        }
        if self.fence_in_rob
            && !self
                .rob
                .iter()
                .any(|&id| self.uops[id].class == InstrClass::Fence)
        {
            self.fence_in_rob = false;
        }
    }

    fn redirect_fetch(&mut self, resume_seq: usize) {
        self.fetch_seq = resume_seq;
        self.fetch_state = if resume_seq >= self.stream.len() {
            FetchState::Drained
        } else {
            FetchState::Starting
        };
        self.fetch_allowed = self.cycle + self.config.redirect_penalty;
        self.recovering = true;
        self.wrong_path = false;
        self.refill_until = 0;
        self.halt_dispatched = false;
    }

    /// Applies the oldest branch flush that resolves at or before `cycle`.
    fn resolve_branch_flushes(&mut self) {
        loop {
            let due: Option<(u64, UopId)> = self
                .pending_branch_flushes
                .iter()
                .copied()
                .filter(|&(ready, id)| {
                    ready <= self.cycle
                        && self
                            .uops
                            .get(id)
                            .map(|u| u.complete(self.cycle))
                            .unwrap_or(false)
                })
                .min_by_key(|&(_, id)| id);
            let Some((_, id)) = due else { return };
            self.pending_branch_flushes.retain(|&(_, i)| i != id);
            let u = &self.uops[id];
            let kind = u.mispredict.expect("flush source is mispredicted");
            let resume = u.stream_idx.expect("on-path branch") + 1;
            match kind {
                Mispredict::Direction => self.events.raise(EventId::BranchMispredict),
                Mispredict::Target => self.events.raise(EventId::CfTargetMispredict),
            }
            self.squash_younger(id, false);
            self.redirect_fetch(resume);
        }
    }

    /// Whether any store older than `load_id` is still waiting to issue.
    fn older_store_unissued(&self, load_id: UopId) -> bool {
        self.iq_mem.iter().any(|&id| {
            id < load_id
                && self
                    .uops
                    .get(id)
                    .map(|u| {
                        !u.issued
                            && matches!(
                                u.class,
                                InstrClass::Store | InstrClass::FpStore | InstrClass::Amo
                            )
                    })
                    .unwrap_or(false)
        })
    }

    /// Machine clear: a store found a younger load that already executed
    /// with an overlapping address. Flush from the load (inclusive) and
    /// replay.
    fn machine_clear(&mut self, load_id: UopId) {
        let load = &self.uops[load_id];
        let resume = load.stream_idx.expect("replayed load is on-path");
        self.violating_loads.insert(load.pc);
        self.events.raise(EventId::Flush);
        self.squash_younger(load_id, true);
        self.redirect_fetch(resume);
    }

    // --- Commit -------------------------------------------------------------

    fn commit(&mut self) {
        let retired = self.commit_lanes();
        // Commit lanes fill in order from lane 0; raising the whole group
        // as one span produces the exact vector the per-lane raises did.
        self.events
            .raise_lane_span(EventId::UopsRetired, 0, retired);
        self.events.raise_n(EventId::InstrRetired, retired as u16);
    }

    /// Retires up to `decode_width` µops from the ROB head and returns
    /// how many lanes retired; the caller raises the per-lane events.
    fn commit_lanes(&mut self) -> usize {
        let mut retired = 0;
        while retired < self.config.decode_width {
            let Some(&head) = self.rob.front() else { break };
            let u = &self.uops[head];
            if u.class == InstrClass::Fence {
                if !u.issued {
                    // A fence waits at the ROB head for the pipeline to
                    // drain, then spends `fence_latency` cycles flushing.
                    if self.rob.len() == 1 {
                        let since = *self.fence_head_since.get_or_insert(self.cycle);
                        if self.cycle >= since + self.config.fence_latency {
                            let u = self.uops.get_mut(head).expect("head exists");
                            u.issued = true;
                            u.complete_cycle = self.cycle;
                        }
                    }
                    break;
                }
            } else if !u.complete(self.cycle) {
                break;
            }
            // Retire.
            let u = self.uops.remove(head).expect("head exists");
            self.rob.pop_front();
            self.last_commit_cycle = self.cycle;
            retired += 1;
            debug_assert!(u.stream_idx.is_some(), "wrong-path µop reached commit");
            self.retired_pcs.push(u.pc);
            self.instret += 1;
            if let Some(dst) = u.dst {
                if self.rename[dst.index()] == Some(head) {
                    self.rename[dst.index()] = None;
                }
            }
            match u.class {
                InstrClass::Load | InstrClass::FpLoad | InstrClass::Amo => {
                    if u.class == InstrClass::Amo {
                        self.events.raise(EventId::AtomicRetired);
                    }
                    self.loads_in_rob -= 1;
                    self.inflight_loads.retain(|&(id, _, _)| id != head);
                }
                InstrClass::Store | InstrClass::FpStore => self.stores_in_rob -= 1,
                InstrClass::Fence => {
                    self.events.raise(EventId::FenceRetired);
                    self.fence_in_rob = false;
                    self.fence_head_since = None;
                    if u.is_fence_i {
                        self.mem.flush_icache();
                    }
                    // The intended pipeline flush: refetch younger
                    // instructions.
                    let resume = u.stream_idx.expect("fence is on-path") + 1;
                    self.squash_younger(head, false);
                    self.redirect_fetch(resume);
                    return retired;
                }
                InstrClass::Halt => {
                    self.done = true;
                    return retired;
                }
                _ => {}
            }
        }
        retired
    }

    // --- Issue ---------------------------------------------------------------

    fn deps_ready(&self, u: &Uop) -> bool {
        u.deps.as_slice().iter().all(|&d| {
            self.uops
                .get(d)
                .map(|p| p.complete(self.cycle))
                .unwrap_or(true)
        })
    }

    fn issue(&mut self) {
        self.issued_this_cycle = 0;
        self.mshrs.drain_completed(self.cycle);
        let int_ports = self.config.int_issue_ports;
        let mem_ports = self.config.mem_issue_ports;
        let fp_ports = self.config.fp_issue_ports;
        self.issue_queue(IqKind::Int, 0, int_ports);
        self.issue_queue(IqKind::Mem, int_ports, mem_ports);
        self.issue_queue(IqKind::Fp, int_ports + mem_ports, fp_ports);
    }

    fn issue_queue(&mut self, kind: IqKind, first_lane: usize, ports: usize) {
        let mut granted = 0;
        let mut pos = 0;
        let mut clears: Vec<UopId> = Vec::new();
        while granted < ports {
            let queue = match kind {
                IqKind::Int => &self.iq_int,
                IqKind::Mem => &self.iq_mem,
                IqKind::Fp => &self.iq_fp,
            };
            let Some(&id) = queue.get(pos) else { break };
            let Some(u) = self.uops.get(id) else {
                pos += 1;
                continue;
            };
            if !self.deps_ready(u) {
                pos += 1;
                continue;
            }
            // Structural hazards.
            match u.class {
                InstrClass::Div if self.div_busy_until > self.cycle => {
                    pos += 1;
                    continue;
                }
                InstrClass::FpDiv if self.fp_div_busy_until > self.cycle => {
                    pos += 1;
                    continue;
                }
                InstrClass::Load
                | InstrClass::FpLoad
                | InstrClass::Store
                | InstrClass::FpStore
                | InstrClass::Amo => {
                    // Memory dependence prediction: a previously-violating
                    // load waits until every older store has issued (its
                    // address is then known) instead of speculating again.
                    if self.config.mem_dep_prediction
                        && matches!(u.class, InstrClass::Load | InstrClass::FpLoad)
                        && self.violating_loads.contains(&u.pc)
                        && self.older_store_unissued(id)
                    {
                        pos += 1;
                        continue;
                    }
                    if let Some(acc) = u.mem {
                        // A miss needs an MSHR (or a merge); if neither is
                        // possible the load/store waits in the queue.
                        let block = acc.addr / self.config.memory.l1d.block_bytes;
                        if !self.mem.peek_data(acc.addr)
                            && self.mshrs.lookup(block, self.cycle).is_none()
                            && !self.mshrs.can_allocate(self.cycle)
                        {
                            pos += 1;
                            continue;
                        }
                    }
                }
                _ => {}
            }
            // Grant.
            let cfg = self.config;
            let u = self.uops.get_mut(id).expect("candidate exists");
            u.issued = true;
            let class = u.class;
            let acc = u.mem;
            let is_wrong_path = u.stream_idx.is_none();
            let mut complete = self.cycle + 1;
            match class {
                InstrClass::Mul => complete = self.cycle + cfg.mul_latency,
                InstrClass::Div => {
                    complete = self.cycle + cfg.div_latency;
                    self.div_busy_until = complete;
                }
                InstrClass::Csr => complete = self.cycle + cfg.csr_latency,
                InstrClass::FpAlu | InstrClass::FpMul => complete = self.cycle + cfg.fp_latency,
                InstrClass::FpDiv => {
                    complete = self.cycle + cfg.fp_div_latency;
                    self.fp_div_busy_until = complete;
                }
                InstrClass::Load | InstrClass::FpLoad => {
                    if let Some(acc) = acc {
                        complete = self.data_access(acc.addr, false);
                        self.inflight_loads.push((id, acc.addr, acc.size));
                    } else {
                        complete = self.cycle + cfg.load_hit_latency;
                    }
                }
                InstrClass::Amo => {
                    // An atomic both reads and writes: it completes when
                    // the line is exclusively held, like a missing load.
                    if let Some(acc) = acc {
                        complete = self.data_access(acc.addr, true);
                        self.inflight_loads.push((id, acc.addr, acc.size));
                    } else {
                        complete = self.cycle + cfg.load_hit_latency;
                    }
                }
                InstrClass::Store | InstrClass::FpStore => {
                    if let Some(acc) = acc {
                        // The write drains through the store queue; issue
                        // latency is the address/data computation.
                        self.data_access(acc.addr, true);
                        complete = self.cycle + 1;
                        // Memory-ordering check: a younger load already
                        // executed against the same bytes speculated past
                        // this store.
                        if !is_wrong_path {
                            if let Some(&(lid, _, _)) = self
                                .inflight_loads
                                .iter()
                                .filter(|&&(lid, laddr, lsize)| {
                                    lid > id
                                        && laddr < acc.addr + acc.size
                                        && acc.addr < laddr + lsize
                                })
                                .min_by_key(|&&(lid, _, _)| lid)
                            {
                                clears.push(lid);
                            }
                        }
                    }
                }
                _ => {}
            }
            let u = self.uops.get_mut(id).expect("candidate exists");
            u.complete_cycle = complete;
            if u.mispredict.is_some() {
                self.pending_branch_flushes.push((complete, id));
            }
            self.issued_this_cycle += 1;
            granted += 1;
            // Remove the granted entry in place (it sits at `pos`, so no
            // full-queue scan); `pos` is not advanced because the next
            // candidate shifted into it.
            match kind {
                IqKind::Int => self.iq_int.remove(pos),
                IqKind::Mem => self.iq_mem.remove(pos),
                IqKind::Fp => self.iq_fp.remove(pos),
            };
        }
        // Grants filled lanes `first_lane..first_lane + granted` in order;
        // one span raise matches the per-grant raises exactly.
        self.events
            .raise_lane_span(EventId::UopsIssued, first_lane, granted);
        // Apply at most the oldest machine clear.
        if let Some(&lid) = clears.iter().min() {
            if self.uops.contains(lid) {
                self.machine_clear(lid);
            }
        }
    }

    /// Performs a timed D-cache access, raising D-side events, and returns
    /// the completion cycle.
    fn data_access(&mut self, addr: u64, is_store: bool) -> u64 {
        let block = addr / self.config.memory.l1d.block_bytes;
        if let Some(slot) = self.mshrs.lookup(block, self.cycle) {
            // Secondary miss: merge with the in-flight refill.
            return slot.ready_cycle;
        }
        let r = if is_store {
            self.mem.store(addr, self.cycle)
        } else {
            self.mem.load(addr, self.cycle)
        };
        if !r.l1_hit {
            self.events.raise(EventId::DCacheMiss);
            let _ = self.mshrs.allocate(block, self.cycle, r.ready_cycle);
        }
        if r.writeback {
            self.events.raise(EventId::DCacheRelease);
        }
        if r.tlb.l1_missed() {
            self.events.raise(EventId::DTlbMiss);
        }
        if r.tlb.l2_missed() {
            self.events.raise(EventId::L2TlbMiss);
        }
        if r.l1_hit {
            self.cycle + self.config.load_hit_latency
        } else {
            r.ready_cycle
        }
    }

    // --- Dispatch ---------------------------------------------------------

    fn dispatch(&mut self) {
        for lane in 0..self.config.decode_width {
            if self.fence_in_rob || self.halt_dispatched {
                // Serialized: decode is not ready, so empty lanes are
                // back-pressure, not fetch bubbles.
                return;
            }
            let Some(front) = self.fb.front() else {
                // Decoder lane ready but no valid µop: the per-lane
                // fetch-bubble event, suppressed while recovering and when
                // the program is simply over.
                if !self.recovering && !self.stream_drained() {
                    self.events.raise_lane_span(
                        EventId::FetchBubbles,
                        lane,
                        self.config.decode_width - lane,
                    );
                }
                return;
            };
            // Structural checks (back-pressure: no bubble events).
            if self.rob.len() >= self.config.rob_entries {
                return;
            }
            let class = front.class;
            match iq_of(class) {
                IqKind::Int => {
                    if class != InstrClass::Fence
                        && class != InstrClass::Halt
                        && self.iq_int.len() >= self.config.int_iq_entries
                    {
                        return;
                    }
                }
                IqKind::Mem => {
                    if self.iq_mem.len() >= self.config.mem_iq_entries {
                        return;
                    }
                    let is_load = matches!(
                        class,
                        InstrClass::Load | InstrClass::FpLoad | InstrClass::Amo
                    );
                    if is_load && self.loads_in_rob >= self.config.lq_entries {
                        return;
                    }
                    if !is_load && self.stores_in_rob >= self.config.stq_entries {
                        return;
                    }
                }
                IqKind::Fp => {
                    if self.iq_fp.len() >= self.config.fp_iq_entries {
                        return;
                    }
                }
            }
            let mut u = self.fb.pop_front().expect("front exists");
            let id = u.id;
            if let Some(dst) = u.dst {
                self.rename[dst.index()] = Some(id);
            }
            match u.class {
                InstrClass::Load | InstrClass::FpLoad | InstrClass::Amo => self.loads_in_rob += 1,
                InstrClass::Store | InstrClass::FpStore => self.stores_in_rob += 1,
                InstrClass::Fence => self.fence_in_rob = true,
                InstrClass::Halt => self.halt_dispatched = true,
                _ => {}
            }
            match u.class {
                InstrClass::Fence => {} // waits at the ROB head
                InstrClass::Halt => {
                    // Halt completes immediately; it retires when it
                    // reaches the head.
                    u.issued = true;
                    u.complete_cycle = self.cycle;
                }
                _ => match iq_of(u.class) {
                    IqKind::Int => self.iq_int.push_back(id),
                    IqKind::Mem => self.iq_mem.push_back(id),
                    IqKind::Fp => self.iq_fp.push_back(id),
                },
            }
            self.rob.push_back(id);
            self.uops.insert(u);
            let _ = lane;
        }
    }

    fn stream_drained(&self) -> bool {
        !self.wrong_path && self.fetch_seq >= self.stream.len()
    }

    // --- Fetch ----------------------------------------------------------------

    fn fetch(&mut self) {
        match self.fetch_state {
            FetchState::Drained => {}
            FetchState::Starting => {
                if self.cycle >= self.fetch_allowed
                    && self.fb.len() < self.config.fetch_buffer_entries
                {
                    self.start_access();
                }
            }
            FetchState::Waiting { ready } => {
                if self.cycle >= ready && self.fb.len() < self.config.fetch_buffer_entries {
                    self.deliver_group();
                    if !matches!(self.fetch_state, FetchState::Drained)
                        && self.cycle >= self.fetch_allowed
                        && self.fb.len() < self.config.fetch_buffer_entries
                    {
                        self.start_access();
                    } else if !matches!(self.fetch_state, FetchState::Drained) {
                        self.fetch_state = FetchState::Starting;
                    }
                }
            }
        }
    }

    fn current_fetch_pc(&self) -> Option<u64> {
        if self.wrong_path {
            Some(self.wp_pc)
        } else if self.fetch_seq < self.stream.len() {
            Some(self.stream.instrs()[self.fetch_seq].pc)
        } else {
            None
        }
    }

    fn start_access(&mut self) {
        let Some(pc) = self.current_fetch_pc() else {
            self.fetch_state = FetchState::Drained;
            return;
        };
        let r = self.mem.fetch(pc, self.cycle);
        if !r.l1_hit {
            self.events.raise(EventId::ICacheMiss);
            self.refill_until = r.ready_cycle;
        }
        if r.tlb.l1_missed() {
            self.events.raise(EventId::ITlbMiss);
        }
        if r.tlb.l2_missed() {
            self.events.raise(EventId::L2TlbMiss);
        }
        self.fetch_state = FetchState::Waiting {
            ready: r.ready_cycle,
        };
    }

    fn deliver_group(&mut self) {
        if self.wrong_path {
            self.deliver_wrong_path();
            return;
        }
        let width = self.config.fetch_width;
        self.recovering = false;
        let mut delivered = 0;
        while delivered < width
            && self.fb.len() < self.config.fetch_buffer_entries
            && self.fetch_seq < self.stream.len()
        {
            let d = self.stream.instrs()[self.fetch_seq];
            let class = d.class();
            if !class.is_control_flow() {
                self.push_on_path_uop(self.fetch_seq, None);
                self.fetch_seq += 1;
                delivered += 1;
                if class == InstrClass::Halt {
                    self.fetch_state = FetchState::Drained;
                    return;
                }
                continue;
            }
            let info = d.branch.expect("control flow has outcome");
            match class {
                InstrClass::Branch => {
                    let predicted_taken = self.predictor.predict(d.pc);
                    let btb_target = self.btb.lookup(d.pc);
                    self.predictor.update(d.pc, info.taken);
                    if info.taken {
                        self.btb.update(d.pc, info.target);
                    }
                    if predicted_taken == info.taken {
                        self.push_on_path_uop(self.fetch_seq, None);
                        self.fetch_seq += 1;
                        if info.taken {
                            if btb_target != Some(info.target) {
                                // Decode-time resteer.
                                self.events.raise(EventId::CfTargetMispredict);
                                self.fetch_allowed = self.cycle + self.config.redirect_penalty;
                            }
                            self.fetch_state = FetchState::Starting;
                            return;
                        }
                        delivered += 1;
                    } else {
                        self.push_on_path_uop(self.fetch_seq, Some(Mispredict::Direction));
                        self.fetch_seq += 1;
                        self.enter_wrong_path(if info.taken {
                            // Predicted not-taken: wrong path falls through.
                            d.pc + 4
                        } else {
                            // Predicted taken: wrong path is the target.
                            btb_target.unwrap_or(info.target)
                        });
                        return;
                    }
                }
                InstrClass::Jump => {
                    let btb_target = self.btb.lookup(d.pc);
                    self.btb.update(d.pc, info.target);
                    if is_call(&d.op) {
                        self.ras.push(d.pc + 4);
                    }
                    self.push_on_path_uop(self.fetch_seq, None);
                    self.fetch_seq += 1;
                    if btb_target != Some(info.target) {
                        self.events.raise(EventId::CfTargetMispredict);
                        self.fetch_allowed = self.cycle + self.config.redirect_penalty;
                    }
                    self.fetch_state = FetchState::Starting;
                    return;
                }
                InstrClass::JumpReg => {
                    // Returns predict through the RAS, like the real
                    // BOOM front-end; other indirect jumps use the BTB.
                    let btb_target = self.btb.lookup(d.pc);
                    let predicted = if is_return(&d.op) {
                        self.ras.pop().or(btb_target)
                    } else {
                        btb_target
                    };
                    self.btb.update(d.pc, info.target);
                    if is_call(&d.op) {
                        self.ras.push(d.pc + 4);
                    }
                    if predicted == Some(info.target) {
                        self.push_on_path_uop(self.fetch_seq, None);
                        self.fetch_seq += 1;
                        self.fetch_state = FetchState::Starting;
                    } else {
                        self.push_on_path_uop(self.fetch_seq, Some(Mispredict::Target));
                        self.fetch_seq += 1;
                        // Wrong path: whatever was (mis)predicted, or
                        // fall-through when nothing was.
                        self.enter_wrong_path(predicted.unwrap_or(d.pc + 4));
                    }
                    return;
                }
                _ => unreachable!("non-control-flow handled above"),
            }
        }
        if self.fetch_seq >= self.stream.len() {
            self.fetch_state = FetchState::Drained;
        } else if !self.wrong_path {
            self.fetch_state = FetchState::Starting;
        }
    }

    fn enter_wrong_path(&mut self, wp_pc: u64) {
        self.wrong_path = true;
        self.wp_pc = self.clamp_to_text(wp_pc);
        self.fetch_state = FetchState::Starting;
    }

    /// Keeps a wrong-path PC inside the text segment: real wrong paths
    /// fetch *something* decodable until the flush rescues them, and
    /// wandering into unmapped space would just alias random text here.
    fn clamp_to_text(&self, pc: u64) -> u64 {
        let text_bytes = 4 * self.program.len() as u64;
        icicle_isa::TEXT_BASE + (pc.wrapping_sub(icicle_isa::TEXT_BASE) % text_bytes)
    }

    fn push_on_path_uop(&mut self, stream_idx: usize, mispredict: Option<Mispredict>) {
        let d = self.stream.instrs()[stream_idx];
        let id = self.alloc_id();
        let mut deps = Deps::new();
        for &r in d.op.src_list().as_slice() {
            if let Some(w) = self.pending_writer(r) {
                deps.push(w);
            }
        }
        self.fb.push_back(Uop {
            id,
            stream_idx: Some(stream_idx),
            pc: d.pc,
            class: d.class(),
            dst: d.op.dst(),
            deps,
            mem: d.mem,
            mispredict,
            is_fence_i: matches!(d.op, Op::FenceI),
            issued: false,
            complete_cycle: u64::MAX,
        });
    }

    /// The youngest in-flight writer of `reg`, looking through the fetch
    /// buffer first (fetch order) and falling back to the rename table.
    fn pending_writer(&self, reg: RegId) -> Option<UopId> {
        for u in self.fb.iter().rev() {
            if u.dst == Some(reg) {
                return Some(u.id);
            }
        }
        self.rename[reg.index()]
    }

    fn deliver_wrong_path(&mut self) {
        let width = self.config.fetch_width;
        let mut delivered = 0;
        while delivered < width && self.fb.len() < self.config.fetch_buffer_entries {
            self.wp_pc = self.clamp_to_text(self.wp_pc);
            let idx = self
                .program
                .index_of(self.wp_pc)
                .expect("clamped pc is in text");
            let op = self.program.code()[idx as usize];
            let mut class = op.class();
            if class == InstrClass::Halt || class == InstrClass::Fence {
                // Serializing encodings on the wrong path decode to
                // something the front-end still pushes through; model
                // them as plain ALU garbage until the flush rescues us.
                class = InstrClass::Alu;
            }
            let id = self.alloc_id();
            let mut deps = Deps::new();
            for &r in op.src_list().as_slice() {
                if let Some(w) = self.pending_writer(r) {
                    deps.push(w);
                }
            }
            self.fb.push_back(Uop {
                id,
                stream_idx: None,
                pc: self.wp_pc,
                class,
                dst: op.dst(),
                deps,
                mem: None,
                mispredict: None,
                is_fence_i: false,
                issued: false,
                complete_cycle: u64::MAX,
            });
            delivered += 1;
            // Follow the *predicted* path statically.
            self.wp_pc = match op {
                Op::Branch { target, .. } => {
                    if self.predictor.predict(self.wp_pc) {
                        self.program.pc_of(target)
                    } else {
                        self.wp_pc + 4
                    }
                }
                Op::Jal { target, .. } => self.program.pc_of(target),
                // An unknown indirect target falls through, like a
                // predictor with no hint.
                Op::Jalr { .. } => self.btb.lookup(self.wp_pc).unwrap_or(self.wp_pc + 4),
                _ => self.wp_pc + 4,
            };
            if class.is_control_flow() {
                // Taken control flow ends the fetch group.
                self.fetch_state = FetchState::Starting;
                return;
            }
        }
        self.fetch_state = FetchState::Starting;
    }

    // --- Derived per-cycle events ------------------------------------------

    fn derived_events(&mut self, was_recovering: bool) {
        if was_recovering {
            self.events.raise(EventId::Recovering);
        }
        // I$-blocked: refill in progress and the fetch buffer is empty.
        if self.refill_until > self.cycle && self.fb.is_empty() {
            self.events.raise(EventId::ICacheBlocked);
        }
        // D$-blocked per commit lane: fewer than `lane+1` µops issued, the
        // issue queues hold work, and at least one MSHR is busy.
        let iq_occupied =
            !self.iq_int.is_empty() || !self.iq_mem.is_empty() || !self.iq_fp.is_empty();
        let mshr_ok = !self.config.dcache_blocked_requires_mshr || self.mshrs.any_busy(self.cycle);
        if iq_occupied && mshr_ok {
            let first = self.issued_this_cycle.min(self.config.decode_width);
            self.events.raise_lane_span(
                EventId::DCacheBlocked,
                first,
                self.config.decode_width - first,
            );
        }
    }

    // --- Quiescence analysis ----------------------------------------------

    /// Computes [`EventCore::time_until_next_event`] purely from current
    /// state: a strictly positive span is returned only when every
    /// pipeline structure — pending flushes, the ROB head, the MSHR file,
    /// all three issue queues, dispatch, and fetch — is provably replaying
    /// the same stall cycle until some absolute wake time, so each skipped
    /// step would raise the exact event vector of the step before it and
    /// mutate nothing but `cycle`.
    fn quiescent_span(&self) -> Option<u64> {
        if self.done {
            return None;
        }
        let c = self.cycle;
        // Earliest absolute cycle at which any unit's behavior changes.
        let mut wake = u64::MAX;

        // Pending branch flushes: an issued mispredict flushes the moment
        // it completes.
        for &(ready, id) in &self.pending_branch_flushes {
            let Some(u) = self.uops.get(id) else { continue };
            if !u.issued {
                // Its issue is analyzed with its queue below.
                continue;
            }
            let due = ready.max(u.complete_cycle);
            if due <= c {
                return None; // Flush would apply next cycle.
            }
            wake = wake.min(due);
        }

        // Commit: the ROB head.
        if let Some(&head) = self.rob.front() {
            let u = &self.uops[head];
            if u.class == InstrClass::Fence && !u.issued {
                if self.rob.len() != 1 {
                    // A fence behind other work is not a steady state the
                    // analysis models; step normally.
                    return None;
                }
                match self.fence_head_since {
                    // The next step records the head-arrival cycle.
                    None => return None,
                    Some(since) => {
                        let t = since + self.config.fence_latency;
                        if t <= c {
                            return None; // Fence issues next cycle.
                        }
                        wake = wake.min(t);
                    }
                }
            } else if u.complete(c) {
                return None; // Head retires next cycle.
            } else if u.issued {
                wake = wake.min(u.complete_cycle);
            }
            // An unissued non-fence head is analyzed with its issue queue.
        }

        // MSHRs: a landed refill mutates the file on the next drain and
        // flips both the D$-blocked annotation and MSHR-full stalls.
        if self.mshrs.has_completed(c) {
            return None;
        }
        if let Some(t) = self.mshrs.next_ready(c) {
            wake = wake.min(t);
        }

        // Issue queues: any entry that could be granted ends the
        // analysis; blocked entries contribute their producers'
        // completion times.
        for queue in [&self.iq_int, &self.iq_mem, &self.iq_fp] {
            for &id in queue {
                let Some(u) = self.uops.get(id) else { continue };
                let mut blocked = false;
                for &d in u.deps.as_slice() {
                    if let Some(p) = self.uops.get(d) {
                        if !p.complete(c) {
                            blocked = true;
                            if p.issued {
                                wake = wake.min(p.complete_cycle);
                            }
                            // An unissued producer is covered by its own
                            // queue entry (or by dispatch, if still in the
                            // fetch buffer).
                        }
                    }
                }
                if blocked {
                    continue;
                }
                match u.class {
                    InstrClass::Div if self.div_busy_until > c => {
                        wake = wake.min(self.div_busy_until);
                    }
                    InstrClass::FpDiv if self.fp_div_busy_until > c => {
                        wake = wake.min(self.fp_div_busy_until);
                    }
                    InstrClass::Load
                    | InstrClass::FpLoad
                    | InstrClass::Store
                    | InstrClass::FpStore
                    | InstrClass::Amo => {
                        if self.config.mem_dep_prediction
                            && matches!(u.class, InstrClass::Load | InstrClass::FpLoad)
                            && self.violating_loads.contains(&u.pc)
                            && self.older_store_unissued(id)
                        {
                            // Waits on the older store, analyzed by its
                            // own queue entry.
                            continue;
                        }
                        if let Some(acc) = u.mem {
                            let block = acc.addr / self.config.memory.l1d.block_bytes;
                            if !self.mem.peek_data(acc.addr)
                                && self.mshrs.lookup(block, c).is_none()
                                && !self.mshrs.can_allocate(c)
                            {
                                // MSHR-full: wakes with `next_ready` above.
                                continue;
                            }
                        }
                        return None; // Would issue next cycle.
                    }
                    _ => return None, // Would issue next cycle.
                }
            }
        }

        // Dispatch: would the front of the fetch buffer dispatch? (Pure
        // back-pressure raises no events; fence/halt serialization is
        // resolved by the commit timers above.)
        if !self.fence_in_rob && !self.halt_dispatched {
            if let Some(front) = self.fb.front() {
                let class = front.class;
                let blocked = if self.rob.len() >= self.config.rob_entries {
                    true
                } else {
                    match iq_of(class) {
                        IqKind::Int => {
                            class != InstrClass::Fence
                                && class != InstrClass::Halt
                                && self.iq_int.len() >= self.config.int_iq_entries
                        }
                        IqKind::Mem => {
                            let is_load = matches!(
                                class,
                                InstrClass::Load | InstrClass::FpLoad | InstrClass::Amo
                            );
                            self.iq_mem.len() >= self.config.mem_iq_entries
                                || (is_load && self.loads_in_rob >= self.config.lq_entries)
                                || (!is_load && self.stores_in_rob >= self.config.stq_entries)
                        }
                        IqKind::Fp => self.iq_fp.len() >= self.config.fp_iq_entries,
                    }
                };
                if !blocked {
                    return None; // Would dispatch next cycle.
                }
            }
        }

        // Fetch. A full fetch buffer stays full for the whole span: the
        // back end is blocked above, so dispatch drains nothing.
        match self.fetch_state {
            FetchState::Drained => {}
            FetchState::Starting => {
                if self.fb.len() < self.config.fetch_buffer_entries {
                    if self.fetch_allowed > c {
                        wake = wake.min(self.fetch_allowed);
                    } else {
                        return None; // Would start an I-cache access.
                    }
                }
            }
            FetchState::Waiting { ready } => {
                if self.fb.len() < self.config.fetch_buffer_entries {
                    if ready > c {
                        wake = wake.min(ready);
                    } else {
                        return None; // Would deliver a fetch packet.
                    }
                }
            }
        }

        // The I$-blocked annotation drops the cycle the refill lands.
        if self.refill_until > c && self.fb.is_empty() {
            wake = wake.min(self.refill_until);
        }

        match wake {
            u64::MAX => None,
            w => Some(w - c),
        }
    }
}

impl L2Linked for Boom {
    fn attach_l2_port(&mut self, port: L2Port) {
        self.mem.attach_l2_port(port);
    }

    fn detach_l2_port(&mut self) {
        self.mem.detach_l2_port();
    }
}

impl EventCore for Boom {
    fn step(&mut self) -> &EventVector {
        // Deliberately free of observability hooks: the global cycle
        // tallies are settled once per session by `Perf::run`, so this
        // loop pays nothing for the tracing layer. The bench ledger's
        // ≤1% overhead contract rides on that staying true.
        self.events.clear();
        self.retired_pcs.clear();
        self.events.raise(EventId::Cycles);
        if !self.done {
            let was_recovering = self.recovering;
            self.resolve_branch_flushes();
            if !self.done {
                self.commit();
            }
            if !self.done {
                self.issue();
                self.dispatch();
                self.fetch();
                self.derived_events(was_recovering);
                assert!(
                    self.cycle - self.last_commit_cycle < 200_000,
                    "no commit for 200k cycles at cycle {} (rob {:?} head, iqs {}/{}/{})",
                    self.cycle,
                    self.rob.front(),
                    self.iq_int.len(),
                    self.iq_mem.len(),
                    self.iq_fp.len()
                );
            }
        }
        self.cycle += 1;
        &self.events
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn commit_width(&self) -> usize {
        self.config.decode_width
    }

    fn issue_width(&self) -> usize {
        self.config.issue_width()
    }

    fn retired_pcs(&self) -> &[u64] {
        &self.retired_pcs
    }

    fn name(&self) -> &str {
        match self.config.size {
            crate::config::BoomSize::Small => "small-boom",
            crate::config::BoomSize::Medium => "medium-boom",
            crate::config::BoomSize::Large => "large-boom",
            crate::config::BoomSize::Mega => "mega-boom",
            crate::config::BoomSize::Giga => "giga-boom",
        }
    }

    fn time_until_next_event(&self) -> Option<u64> {
        self.quiescent_span()
    }

    fn fast_forward(&mut self, cycles: u64) {
        self.cycle += cycles;
        // Mirror the per-step runaway check: a span long enough to cross
        // the no-commit bound must still panic, as stepping would have.
        // `<=` (not `<`): the wake cycle itself gets a real step where
        // commit runs before the per-step assert, so only cycles strictly
        // inside the span may trip it here.
        assert!(
            self.cycle - self.last_commit_cycle <= 200_000,
            "no commit for 200k cycles at cycle {} (rob {:?} head, iqs {}/{}/{})",
            self.cycle,
            self.rob.front(),
            self.iq_int.len(),
            self.iq_mem.len(),
            self.iq_fp.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_isa::{Interpreter, ProgramBuilder, Reg};

    #[derive(Default, Debug)]
    struct Counters {
        cycles: u64,
        retired: u64,
        uops_retired: u64,
        issued: u64,
        bubbles: u64,
        recovering: u64,
        br_mispred: u64,
        flush: u64,
        fence_retired: u64,
        icache_blocked: u64,
        dcache_blocked: u64,
        dcache_miss: u64,
    }

    fn run(b: ProgramBuilder, config: BoomConfig) -> (Boom, Counters) {
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(5_000_000).unwrap();
        let mut core = Boom::new(config, stream, program);
        let mut c = Counters::default();
        while !core.is_done() {
            let ev = core.step();
            c.cycles += 1;
            c.retired += ev.count(EventId::InstrRetired) as u64;
            c.uops_retired += ev.count(EventId::UopsRetired) as u64;
            c.issued += ev.count(EventId::UopsIssued) as u64;
            c.bubbles += ev.count(EventId::FetchBubbles) as u64;
            c.recovering += ev.count(EventId::Recovering) as u64;
            c.br_mispred += ev.count(EventId::BranchMispredict) as u64;
            c.flush += ev.count(EventId::Flush) as u64;
            c.fence_retired += ev.count(EventId::FenceRetired) as u64;
            c.icache_blocked += ev.count(EventId::ICacheBlocked) as u64;
            c.dcache_blocked += ev.count(EventId::DCacheBlocked) as u64;
            c.dcache_miss += ev.count(EventId::DCacheMiss) as u64;
            assert!(c.cycles < 4_000_000, "runaway simulation");
        }
        (core, c)
    }

    fn ilp_loop(iters: i64) -> ProgramBuilder {
        // Six independent chains: plenty of ILP for a 3-wide core.
        let mut b = ProgramBuilder::new("ilp");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, iters);
        b.li(Reg::S0, 0);
        b.li(Reg::S1, 0);
        b.li(Reg::S2, 0);
        b.li(Reg::S3, 0);
        b.label("l");
        b.addi(Reg::S0, Reg::S0, 1);
        b.addi(Reg::S1, Reg::S1, 2);
        b.addi(Reg::S2, Reg::S2, 3);
        b.addi(Reg::S3, Reg::S3, 4);
        b.addi(Reg::S0, Reg::S0, 1);
        b.addi(Reg::S1, Reg::S1, 2);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, "l");
        b.halt();
        b
    }

    #[test]
    fn superscalar_ipc_exceeds_one() {
        let (core, c) = run(ilp_loop(2000), BoomConfig::large());
        let ipc = c.retired as f64 / c.cycles as f64;
        assert!(ipc > 1.5, "large BOOM should exceed IPC 1.5, got {ipc}");
        assert_eq!(core.instret(), c.retired);
    }

    #[test]
    fn wider_configs_are_faster() {
        let (_, small) = run(ilp_loop(1000), BoomConfig::small());
        let (_, mega) = run(ilp_loop(1000), BoomConfig::mega());
        assert!(
            mega.cycles < small.cycles,
            "mega ({}) should beat small ({})",
            mega.cycles,
            small.cycles
        );
    }

    #[test]
    fn every_on_path_instruction_retires_once() {
        let (core, c) = run(ilp_loop(500), BoomConfig::large());
        assert_eq!(c.retired, core.stream.len() as u64);
        assert_eq!(c.uops_retired, c.retired);
    }

    #[test]
    fn mispredictions_issue_wrong_path_uops() {
        // A branch depending on a cache-missing load resolves late, so the
        // wrong path runs deep: issued must exceed retired.
        let n = 16384u64; // 128 KiB table, beats the 32 KiB L1D
        let mut b = ProgramBuilder::new("brmiss");
        let mut rng = 0xdead_beef_cafe_f00du64;
        let entries: Vec<u64> = (0..n)
            .map(|_| {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng & 1
            })
            .collect();
        let table = b.data_u64(&entries);
        let idx_stride = 4243; // co-prime with n
        b.li(Reg::T0, table as i64);
        b.li(Reg::T1, 0); // index
        b.li(Reg::T2, 3000); // iterations
        b.li(Reg::T3, 0);
        b.li(Reg::S1, 0);
        b.label("l");
        b.slli(Reg::T4, Reg::T1, 3);
        b.add(Reg::T4, Reg::T0, Reg::T4);
        b.ld(Reg::T5, Reg::T4, 0); // random 0/1, often L1-missing
        b.beq(Reg::T5, Reg::ZERO, "skip"); // data-dependent: unpredictable
        b.addi(Reg::S1, Reg::S1, 1);
        b.label("skip");
        b.addi(Reg::T1, Reg::T1, idx_stride);
        b.andi(Reg::T1, Reg::T1, (n - 1) as i64);
        b.addi(Reg::T3, Reg::T3, 1);
        b.blt(Reg::T3, Reg::T2, "l");
        b.halt();
        let (_, c) = run(b, BoomConfig::large());
        assert!(c.br_mispred > 500, "mispredicts {}", c.br_mispred);
        assert!(
            c.issued > c.uops_retired + 1000,
            "wrong-path issue expected: issued {} vs retired {}",
            c.issued,
            c.uops_retired
        );
        assert!(c.recovering > 1000);
    }

    #[test]
    fn fences_flush_and_count() {
        let mut b = ProgramBuilder::new("fence");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 50);
        b.label("l");
        b.fence();
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, "l");
        b.halt();
        let (_, c) = run(b, BoomConfig::large());
        assert_eq!(c.fence_retired, 50);
        assert!(
            c.recovering >= 50,
            "fence flushes recover: {}",
            c.recovering
        );
        // Fences are intended flushes: no machine-clear Flush events.
        assert_eq!(c.flush, 0);
    }

    #[test]
    fn memory_ordering_violation_machine_clears() {
        // A store whose address depends on a slow divide, followed by a
        // load to the same address: the load issues first (speculation),
        // the store detects the overlap, and a machine clear replays.
        let mut b = ProgramBuilder::new("mc");
        let buf = b.data_u64(&[1, 2, 3, 4, 5, 6, 7, 8]);
        b.li(Reg::T0, buf as i64);
        b.li(Reg::T1, 64);
        b.li(Reg::T6, 8);
        b.li(Reg::T2, 0);
        b.li(Reg::T3, 100);
        b.label("l");
        b.div(Reg::T4, Reg::T1, Reg::T6); // slow: 64/8 = 8
        b.add(Reg::T4, Reg::T0, Reg::T4); // store address = buf + 8
        b.sd(Reg::T3, Reg::T4, 0); // slow store
        b.ld(Reg::T5, Reg::T0, 8); // younger load, same address
        b.addi(Reg::T2, Reg::T2, 1);
        b.blt(Reg::T2, Reg::T3, "l");
        b.halt();
        let (_, c) = run(b, BoomConfig::large());
        assert!(
            c.flush > 10,
            "memory-ordering machine clears expected, got {}",
            c.flush
        );
    }

    #[test]
    fn memory_dependence_prediction_tames_machine_clears() {
        // The same store→load conflict loop as the machine-clear test:
        // with prediction on, repeat offenders stop speculating and the
        // clears (almost) vanish, trading a little issue delay.
        let build = || {
            let mut b = ProgramBuilder::new("mc");
            let buf = b.data_u64(&[1, 2, 3, 4, 5, 6, 7, 8]);
            b.li(Reg::T0, buf as i64);
            b.li(Reg::T1, 64);
            b.li(Reg::T6, 8);
            b.li(Reg::T2, 0);
            b.li(Reg::T3, 100);
            b.label("l");
            b.div(Reg::T4, Reg::T1, Reg::T6);
            b.add(Reg::T4, Reg::T0, Reg::T4);
            b.sd(Reg::T3, Reg::T4, 0);
            b.ld(Reg::T5, Reg::T0, 8);
            b.addi(Reg::T2, Reg::T2, 1);
            b.blt(Reg::T2, Reg::T3, "l");
            b.halt();
            b.build().unwrap()
        };
        let count_flushes = |predict: bool| {
            let program = build();
            let stream = Interpreter::new(&program).run(100_000).unwrap();
            let mut cfg = BoomConfig::large();
            cfg.mem_dep_prediction = predict;
            let mut core = Boom::new(cfg, stream, program);
            let mut flushes = 0u64;
            while !core.is_done() {
                flushes += core.step().count(EventId::Flush) as u64;
            }
            (flushes, core.cycle())
        };
        let (without, _) = count_flushes(false);
        let (with, _) = count_flushes(true);
        assert!(without > 10, "baseline must violate: {without}");
        assert!(
            with * 10 <= without,
            "prediction should kill ≥90% of clears: {without} -> {with}"
        );
    }

    #[test]
    fn pointer_chase_asserts_dcache_blocked() {
        let n = 32768u64; // 256 KiB
        let mut b = ProgramBuilder::new("chase");
        // A random single-cycle permutation (Sattolo's algorithm with a
        // deterministic xorshift) so every load leaves the current block.
        let mut entries: Vec<u64> = (0..n).collect();
        let mut rng = 0x1234_5678_9abc_def0u64;
        for i in (1..n as usize).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let j = (rng % i as u64) as usize;
            entries.swap(i, j);
        }
        let table = b.data_u64(&entries);
        b.li(Reg::T0, table as i64);
        b.li(Reg::T1, 0);
        b.li(Reg::T2, 4000);
        b.li(Reg::T3, 0);
        b.label("l");
        b.slli(Reg::T4, Reg::T1, 3);
        b.add(Reg::T4, Reg::T0, Reg::T4);
        b.ld(Reg::T1, Reg::T4, 0);
        b.addi(Reg::T3, Reg::T3, 1);
        b.blt(Reg::T3, Reg::T2, "l");
        b.halt();
        let (_, c) = run(b, BoomConfig::large());
        let blocked_frac = c.dcache_blocked as f64 / (c.cycles * 3) as f64;
        assert!(
            blocked_frac > 0.3,
            "dependent misses should block commit slots: {blocked_frac}"
        );
        assert!(c.dcache_miss > 2000);
    }

    #[test]
    fn quiescent_skip_matches_stepping() {
        // Same stream twice: one core stepped cycle-by-cycle, one
        // fast-forwarded through every claimed quiescent span. Final
        // cycle, instret, and every event total must match exactly.
        let n = 32768u64;
        let mut b = ProgramBuilder::new("skipmix");
        let mut entries: Vec<u64> = (0..n).collect();
        let mut rng = 0x1234_5678_9abc_def0u64;
        for i in (1..n as usize).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let j = (rng % i as u64) as usize;
            entries.swap(i, j);
        }
        let table = b.data_u64(&entries);
        b.li(Reg::T0, table as i64);
        b.li(Reg::T1, 0);
        b.li(Reg::T2, 2000);
        b.li(Reg::T3, 0);
        b.li(Reg::S0, 1_000_000);
        b.li(Reg::S1, 7);
        b.label("l");
        b.slli(Reg::T4, Reg::T1, 3);
        b.add(Reg::T4, Reg::T0, Reg::T4);
        b.ld(Reg::T1, Reg::T4, 0); // dependent, mostly missing
        b.div(Reg::S2, Reg::S0, Reg::S1); // serializing divide
        b.addi(Reg::T3, Reg::T3, 1);
        b.blt(Reg::T3, Reg::T2, "l");
        b.halt();
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(5_000_000).unwrap();

        let mut stepped = Boom::new(BoomConfig::large(), stream.clone(), program.clone());
        let mut step_counts = icicle_events::EventCounts::new();
        while !stepped.is_done() {
            step_counts.observe(stepped.step());
        }

        let mut skipped = Boom::new(BoomConfig::large(), stream, program);
        let mut skip_counts = icicle_events::EventCounts::new();
        let mut spans = 0u64;
        while !skipped.is_done() {
            let span = skipped.time_until_next_event();
            let v = skipped.step().clone();
            skip_counts.observe(&v);
            if let Some(n) = span {
                if n >= 2 {
                    skipped.fast_forward(n - 1);
                    skip_counts.observe_many(&v, n - 1);
                    spans += 1;
                }
            }
            assert!(skipped.cycle() < 10_000_000, "runaway skip loop");
        }

        assert!(spans > 100, "stall-heavy program must skip, got {spans}");
        assert_eq!(stepped.cycle(), skipped.cycle());
        assert_eq!(stepped.instret(), skipped.instret());
        assert_eq!(step_counts, skip_counts);
    }

    #[test]
    fn fetch_bubble_lanes_are_ordered() {
        // Lane i+1 starves at least as often as lane i.
        let mut b = ProgramBuilder::new("bub");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 500);
        b.label("l");
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, "l");
        b.halt();
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(100_000).unwrap();
        let mut core = Boom::new(BoomConfig::large(), stream, program);
        let mut lanes = [0u64; 3];
        while !core.is_done() {
            let ev = core.step();
            for (l, total) in lanes.iter_mut().enumerate() {
                if ev.lane_set(EventId::FetchBubbles, l) {
                    *total += 1;
                }
            }
        }
        assert!(lanes[0] <= lanes[1] && lanes[1] <= lanes[2], "{lanes:?}");
    }

    #[test]
    fn quiet_after_done() {
        let mut b = ProgramBuilder::new("t");
        b.nop();
        b.halt();
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(100).unwrap();
        let mut core = Boom::new(BoomConfig::small(), stream, program);
        while !core.is_done() {
            core.step();
        }
        let ev = core.step();
        assert_eq!(ev.count(EventId::InstrRetired), 0);
        assert!(ev.is_set(EventId::Cycles));
    }

    #[test]
    fn more_mshrs_expose_memory_level_parallelism() {
        // Two independent pointer chases interleaved: with several MSHRs
        // their misses overlap; with one MSHR they serialize.
        let n = 16384u64;
        let mut b = ProgramBuilder::new("mlp");
        let mut entries: Vec<u64> = (0..n).collect();
        let mut rng = 0xfeed_f00du64;
        for i in (1..n as usize).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            entries.swap(i, (rng % i as u64) as usize);
        }
        let t1 = b.data_u64(&entries);
        let t2 = b.data_u64(&entries);
        b.li(Reg::S0, t1 as i64);
        b.li(Reg::S1, t2 as i64);
        b.li(Reg::T0, 0); // chase A index
        b.li(Reg::T1, 1); // chase B index
        b.li(Reg::T2, 0);
        b.li(Reg::T3, 1500);
        b.label("l");
        b.slli(Reg::T4, Reg::T0, 3);
        b.add(Reg::T4, Reg::S0, Reg::T4);
        b.ld(Reg::T0, Reg::T4, 0); // chain A
        b.slli(Reg::T5, Reg::T1, 3);
        b.add(Reg::T5, Reg::S1, Reg::T5);
        b.ld(Reg::T1, Reg::T5, 0); // chain B, independent of A
        b.addi(Reg::T2, Reg::T2, 1);
        b.blt(Reg::T2, Reg::T3, "l");
        b.halt();
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(1_000_000).unwrap();

        let mut one = BoomConfig::large();
        one.n_mshrs = 1;
        let mut core1 = Boom::new(one, stream.clone(), program.clone());
        let c1 = core1.run_to_completion(50_000_000).unwrap();
        let mut core8 = Boom::new(BoomConfig::large(), stream, program);
        let c8 = core8.run_to_completion(50_000_000).unwrap();
        assert!(
            c8 * 4 < c1 * 3,
            "4 MSHRs should overlap the chains: 1-MSHR {c1} vs 4-MSHR {c8}"
        );
    }

    #[test]
    fn backpressure_is_not_counted_as_fetch_bubbles() {
        // A tiny ROB stuffed by a slow divide chain: dispatch stalls are
        // backend pressure, so FetchBubbles must stay quiet.
        let mut b = ProgramBuilder::new("bp");
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 200);
        b.li(Reg::T2, 1_000_000);
        b.li(Reg::T3, 3);
        b.label("l");
        b.div(Reg::T2, Reg::T2, Reg::T3); // serial divides
        b.addi(Reg::T2, Reg::T2, 1_000_000);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, "l");
        b.halt();
        let mut cfg = BoomConfig::large();
        cfg.rob_entries = 8;
        let (_, c) = run(b, cfg);
        let bubble_frac = c.bubbles as f64 / (c.cycles * 3) as f64;
        assert!(
            bubble_frac < 0.05,
            "divider backpressure must not read as frontend: {bubble_frac}"
        );
    }

    #[test]
    fn fp_work_issues_on_the_fp_port() {
        let mut b = ProgramBuilder::new("fp");
        use icicle_isa::FReg;
        b.li(Reg::T0, 0);
        b.li(Reg::T1, 300);
        b.li(Reg::T2, 2.0f64.to_bits() as i64);
        b.fmv_d_x(FReg::F0, Reg::T2);
        b.fmv_d_x(FReg::F1, Reg::T2);
        b.label("l");
        b.fmul(FReg::F2, FReg::F0, FReg::F1);
        b.fadd(FReg::F3, FReg::F2, FReg::F0);
        b.addi(Reg::T0, Reg::T0, 1);
        b.blt(Reg::T0, Reg::T1, "l");
        b.halt();
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(100_000).unwrap();
        let config = BoomConfig::large();
        let fp_lane = config.int_issue_ports + config.mem_issue_ports; // lane 4
        let mut core = Boom::new(config, stream, program);
        let mut fp_issues = 0u64;
        let mut total_fp_uops = 0u64;
        while !core.is_done() {
            let ev = core.step();
            if ev.lane_set(EventId::UopsIssued, fp_lane) {
                fp_issues += 1;
            }
            let _ = &mut total_fp_uops;
        }
        // 600 loop FP µops plus the two fmv setups, all through the
        // single FP port.
        assert_eq!(fp_issues, 602);
    }

    #[test]
    fn names_track_size() {
        let mut b = ProgramBuilder::new("t");
        b.halt();
        let program = b.build().unwrap();
        let stream = Interpreter::new(&program).run(10).unwrap();
        let core = Boom::new(BoomConfig::giga(), stream, program);
        assert_eq!(core.name(), "giga-boom");
        assert_eq!(core.commit_width(), 5);
        assert_eq!(core.issue_width(), 9);
    }
}
