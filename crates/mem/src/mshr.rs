//! Miss-status holding registers for non-blocking caches.

/// One outstanding cache-miss record.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MshrSlot {
    /// Base address of the missing block.
    pub block_addr: u64,
    /// Cycle at which the refill completes.
    pub ready_cycle: u64,
}

/// A file of miss-status holding registers.
///
/// BOOM's L1D is non-blocking: up to `capacity` misses may be outstanding,
/// and the paper's `D$-blocked` heuristic asserts only when *at least one
/// MSHR is currently handling a cache miss* (§IV-A). The file is also the
/// structural-hazard point: when it is full, further misses must stall.
#[derive(Clone, Debug)]
pub struct MshrFile {
    slots: Vec<MshrSlot>,
    capacity: usize,
}

impl MshrFile {
    /// Creates an empty file with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile {
            slots: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retires slots whose refills completed at or before `now`.
    pub fn drain_completed(&mut self, now: u64) {
        self.slots.retain(|s| s.ready_cycle > now);
    }

    /// Number of misses still in flight at `now`.
    pub fn busy(&self, now: u64) -> usize {
        self.slots.iter().filter(|s| s.ready_cycle > now).count()
    }

    /// Whether any miss is in flight at `now` (the `D$-blocked` condition).
    pub fn any_busy(&self, now: u64) -> bool {
        self.busy(now) > 0
    }

    /// Whether a new miss can be accepted at `now`.
    pub fn can_allocate(&self, now: u64) -> bool {
        self.busy(now) < self.capacity
    }

    /// Whether any slot completed at or before `now` but has not yet been
    /// retired by [`drain_completed`](MshrFile::drain_completed). Such a
    /// slot means the next `drain_completed` call will mutate the file, so
    /// a quiescence analysis must not claim the coming cycle is pure.
    pub fn has_completed(&self, now: u64) -> bool {
        self.slots.iter().any(|s| s.ready_cycle <= now)
    }

    /// The earliest refill-completion cycle strictly after `now`, if any
    /// miss is still in flight.
    pub fn next_ready(&self, now: u64) -> Option<u64> {
        self.slots
            .iter()
            .filter(|s| s.ready_cycle > now)
            .map(|s| s.ready_cycle)
            .min()
    }

    /// Looks for an in-flight miss on the same block (a secondary miss
    /// merges instead of allocating a new slot).
    pub fn lookup(&self, block_addr: u64, now: u64) -> Option<MshrSlot> {
        self.slots
            .iter()
            .find(|s| s.block_addr == block_addr && s.ready_cycle > now)
            .copied()
    }

    /// Allocates a slot for a new miss.
    ///
    /// Merges with an existing slot for the same block if present (and
    /// returns that slot's ready cycle). Returns `None` if the file is full.
    pub fn allocate(&mut self, block_addr: u64, now: u64, ready_cycle: u64) -> Option<u64> {
        self.drain_completed(now);
        if let Some(existing) = self.lookup(block_addr, now) {
            return Some(existing.ready_cycle);
        }
        if self.slots.len() >= self.capacity {
            return None;
        }
        self.slots.push(MshrSlot {
            block_addr,
            ready_cycle,
        });
        Some(ready_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_drain() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(0x100, 0, 50), Some(50));
        assert!(m.any_busy(10));
        assert!(!m.any_busy(50));
        m.drain_completed(50);
        assert_eq!(m.busy(10), 0);
    }

    #[test]
    fn secondary_miss_merges() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.allocate(0x100, 0, 50), Some(50));
        // Same block while in flight: merged, not rejected, same ready cycle.
        assert_eq!(m.allocate(0x100, 10, 99), Some(50));
        assert_eq!(m.busy(10), 1);
    }

    #[test]
    fn full_file_rejects_new_blocks() {
        let mut m = MshrFile::new(1);
        m.allocate(0x100, 0, 50).unwrap();
        assert_eq!(m.allocate(0x200, 10, 60), None);
        // After the first completes, a new block can allocate.
        assert_eq!(m.allocate(0x200, 50, 110), Some(110));
    }

    #[test]
    fn busy_respects_time() {
        let mut m = MshrFile::new(4);
        m.allocate(0x000, 0, 10).unwrap();
        m.allocate(0x040, 0, 20).unwrap();
        assert_eq!(m.busy(5), 2);
        assert_eq!(m.busy(15), 1);
        assert_eq!(m.busy(25), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
