//! Regenerates Fig. 3: the cycle-accurate Frontend event trace for
//! mergesort that motivates the Fetch-bubbles event — the stock
//! `I$-miss`/`I$-blocked` pair explains the cold-start stalls (a) but
//! not the steady-state fetch bubbles (b).

use icicle::events::EventId;
use icicle::prelude::*;

fn main() {
    let workload = icicle::workloads::micro::mergesort(1 << 10);
    let channels = vec![
        TraceChannel::scalar(EventId::ICacheMiss),
        TraceChannel::scalar(EventId::ICacheBlocked),
        TraceChannel::scalar(EventId::FetchBubbles),
        TraceChannel::scalar(EventId::Recovering),
    ];
    let mut core = Rocket::new(RocketConfig::default(), workload.execute().unwrap());
    let report = Perf::new()
        .trace(TraceConfig::new(channels.clone()).unwrap())
        .run(&mut core)
        .unwrap();
    let trace = report.trace.as_ref().unwrap();

    println!("=== Fig. 3: Frontend events, mergesort on Rocket ===\n");

    // (a) the first I-cache miss: I$-blocked tracks the fetch bubbles.
    if let Some(first_miss) = trace.windows(0).first() {
        let lo = first_miss.start.saturating_sub(4);
        println!("(a) around the first I$-miss, cycles {lo}..{}:", lo + 56);
        render(trace, &channels, lo, lo + 56);
    }

    // (b) a warm-cache region: bubbles with no I$ activity in sight.
    // Rocket's 2-wide fetch rarely starves its 1-wide decode when warm,
    // so §III's "same argument holds for BOOM" panel is rendered on the
    // 3-wide LargeBoom, whose decode demand exceeds the post-branch
    // fetch supply.
    let mut boom = Boom::new(
        BoomConfig::large(),
        workload.execute().unwrap(),
        workload.program_arc(),
    );
    let report_b = Perf::new()
        .trace(TraceConfig::new(channels.clone()).unwrap())
        .run(&mut boom)
        .unwrap();
    let btrace = report_b.trace.as_ref().unwrap();
    let mut shown = false;
    let mut cycle = btrace.len() as u64 / 2;
    while cycle + 60 < btrace.len() as u64 {
        let bubbles = (cycle..cycle + 60)
            .filter(|&c| btrace.is_high(2, c) && !btrace.is_high(1, c) && !btrace.is_high(3, c))
            .count();
        let misses = (cycle..cycle + 60)
            .filter(|&c| btrace.is_high(0, c))
            .count();
        if bubbles >= 3 && misses == 0 {
            println!(
                "\n(b) warm-cache window on LargeBoom, cycles {cycle}..{}:",
                cycle + 60
            );
            render(btrace, &channels, cycle, cycle + 60);
            shown = true;
            break;
        }
        cycle += 60;
    }
    if !shown {
        println!("\n(b) no warm-window bubbles found at this size");
    }

    for (core, t) in [("Rocket", trace), ("LargeBoom", btrace)] {
        let bubbles = t.high_count(2);
        let blocked = t.high_count(1);
        println!(
            "\n{core}: {bubbles} fetch-bubble cycles; I$-blocked explains {blocked} \
             ({:.1}%) — the remaining {:.1}% are invisible to the stock events.",
            100.0 * blocked.min(bubbles) as f64 / bubbles.max(1) as f64,
            100.0 * bubbles.saturating_sub(blocked) as f64 / bubbles.max(1) as f64,
        );
    }
}

fn render(trace: &Trace, channels: &[TraceChannel], lo: u64, hi: u64) {
    for (bit, ch) in channels.iter().enumerate() {
        let mut row = String::new();
        for cycle in lo..hi.min(trace.len() as u64) {
            row.push(if trace.is_high(bit, cycle) { '*' } else { '.' });
        }
        println!("{:>14} |{row}|", ch.to_string());
    }
}
