//! # icicle-verify
//!
//! The differential verification harness of the Icicle reproduction —
//! the machinery behind the paper's central credibility claim that
//! counter-derived TMA is *validated against cycle-accurate traces*
//! (§V, Table VI).
//!
//! Four pillars:
//!
//! * **Model differential** ([`verify_cell`], [`run_matrix`]) — every
//!   campaign cell runs once, producing both the counter-based Table II
//!   breakdown (through the real PMU model, quantization and all) and
//!   the trace-based slot-granular temporal breakdown. Per-class
//!   divergence must stay within a [`DivergenceBound`] derived from the
//!   same run: priority-overlap slots counted in the trace, Table II's
//!   wrong-path terms, the Table VI window ambiguity, and the
//!   distributed-counter quantization envelope.
//! * **Architecture differential** ([`ArchDifferential`]) — scalar,
//!   add-wires, and distributed counters observe identical per-cycle
//!   assertion masks and must agree exactly (distributed up to its
//!   documented `S · (2^N − 1 + 2^N)` software-visible envelope), while
//!   stock OR semantics document the undercount that motivates the
//!   paper.
//! * **Seeded fuzzing** ([`run_fuzz`]) — random instruction mixes
//!   stress the differential beyond the curated suite; any divergence
//!   is shrunk to a minimal reproducer.
//! * **Golden snapshots** ([`compare_or_update`]) — canonical
//!   byte-for-byte TMA breakdowns per cell, regenerated with
//!   `ICICLE_UPDATE_GOLDEN=1`.
//!
//! ```
//! use icicle_campaign::{CampaignSpec, CoreSelect};
//! use icicle_pmu::CounterArch;
//! use icicle_verify::{run_matrix, MatrixOptions};
//!
//! let spec = CampaignSpec::new("demo")
//!     .workloads(["vvadd"])
//!     .cores([CoreSelect::Rocket])
//!     .archs([CounterArch::AddWires]);
//! let report = run_matrix(&spec, &MatrixOptions::with_jobs(2));
//! assert!(report.passed(), "{report}");
//! ```

pub mod archdiff;
pub mod bound;
pub mod differential;
pub mod faultfuzz;
pub mod fuzz;
pub mod golden;
pub mod matrix;
pub mod pdes;
pub mod report;
pub mod timeline;

pub use archdiff::{diff_synthetic, diff_workload, ArchAgreement, ArchDifferential};
pub use bound::{BoundDerivation, DivergenceBound};
pub use differential::{
    verify_cell, verify_cell_with, verify_workload, verify_workload_with, CellVerdict,
    ClassReading, CLASS_NAMES,
};
pub use faultfuzz::{
    check_plan, fault_fuzz_spec, run_fault_fuzz, shrink_plan, FaultFuzzOptions, FaultFuzzReport,
    FaultViolation,
};
pub use fuzz::{run_fuzz, shrink, FuzzCase, FuzzDivergence, FuzzOp, FuzzOptions, FuzzReport};
pub use golden::{compare_or_update, update_requested, GoldenOutcome, UPDATE_ENV};
pub use matrix::{default_matrix, run_matrix, MatrixOptions};
pub use pdes::{
    check_case, run_pdes, shrink_case, PdesCase, PdesDivergence, PdesMismatch, PdesOptions,
    PdesReport,
};
pub use report::MatrixReport;
pub use timeline::{export_cell_timeline, export_cell_timeline_with};

#[cfg(test)]
mod tests {
    use super::*;

    /// The matrix runner moves verdicts across worker threads.
    #[test]
    fn verify_moved_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CellVerdict>();
        assert_send::<MatrixReport>();
        assert_send::<FuzzReport>();
        assert_send::<ArchAgreement>();
    }
}
