//! # Icicle
//!
//! A full-system reproduction of *Icicle: Open-Source Hardware Support
//! for Top-Down Microarchitectural Analysis on RISC-V* (IISWC 2025) as a
//! pure-Rust library.
//!
//! Icicle makes Top-Down Microarchitectural Analysis (TMA) possible on
//! the open-source Rocket and BOOM cores by adding a handful of
//! carefully-chosen performance events, counter architectures that can
//! track several event assertions per cycle, a perf-like software
//! harness, and trace-based validation. This crate re-implements the
//! entire stack over cycle-level core models:
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`isa`] | `icicle-isa` | execution substrate (RISC-V-like ISA + interpreter) |
//! | [`mem`] | `icicle-mem` | caches, TLBs, MSHRs (Table IV common config) |
//! | [`events`] | `icicle-events` | the PMU event list (Table I) |
//! | [`pmu`] | `icicle-pmu` | counter architectures + CSR file (§IV-B, §IV-D) |
//! | [`rocket`] | `icicle-rocket` | the in-order core (Fig. 2a) |
//! | [`boom`] | `icicle-boom` | the out-of-order core (Fig. 2b, Table IV) |
//! | [`tma`] | `icicle-tma` | the TMA model (Table II, Fig. 5) |
//! | [`trace`] | `icicle-trace` | cycle tracing + temporal TMA (§IV-C, §V-B) |
//! | [`perf`] | `icicle-perf` | the perf harness (§IV-D) |
//! | [`vlsi`] | `icicle-vlsi` | post-placement cost model (Fig. 9) |
//! | [`workloads`] | `icicle-workloads` | microbenchmarks + SPEC proxies (Table III) |
//! | [`campaign`] | `icicle-campaign` | parallel experiment campaigns with result caching |
//! | [`verify`] | `icicle-verify` | differential counter-vs-trace TMA verification (§V) |
//! | [`obs`] | `icicle-obs` | structured tracing, metrics, Perfetto timeline export |
//!
//! The analysis server (`icicle-serve`) sits *above* this facade — it
//! drives the campaign/verify/bench engines the way the CLI does, so it
//! is a sibling dependency rather than a module here.
//!
//! ## Quickstart
//!
//! ```
//! use icicle::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Pick a workload and execute it architecturally.
//! let w = icicle::workloads::micro::qsort(256);
//! let stream = w.execute()?;
//!
//! // 2. Replay it on a cycle-level core.
//! let mut core = Boom::new(BoomConfig::large(), stream, w.program().clone());
//!
//! // 3. Measure with the perf harness and read the TMA classification.
//! let report = Perf::new().run(&mut core)?;
//! assert!((report.tma.top.total() - 1.0).abs() < 1e-9);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

pub mod error;

pub use error::IcicleError;

pub use icicle_boom as boom;
pub use icicle_campaign as campaign;
pub use icicle_events as events;
pub use icicle_faults as faults;
pub use icicle_isa as isa;
pub use icicle_mem as mem;
pub use icicle_obs as obs;
pub use icicle_perf as perf;
pub use icicle_pmu as pmu;
pub use icicle_rocket as rocket;
pub use icicle_soc as soc;
pub use icicle_tma as tma;
pub use icicle_trace as trace;
pub use icicle_verify as verify;
pub use icicle_vlsi as vlsi;
pub use icicle_workloads as workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use crate::error::IcicleError;
    pub use icicle_boom::{Boom, BoomConfig, BoomSize};
    pub use icicle_campaign::{
        run_campaign, CampaignReport, CampaignSpec, CoreSelect, ResultCache, RunOptions,
    };
    pub use icicle_events::{EventCore, EventCounts, EventId, EventVector, LaneCounts};
    pub use icicle_isa::{DynStream, Interpreter, Program, ProgramBuilder, Reg};
    pub use icicle_mem::{HierarchyConfig, MemoryHierarchy};
    pub use icicle_obs::MetricsRegistry;
    pub use icicle_perf::{MultiplexOptions, Perf, PerfOptions, PerfReport, Profiler, SkipPolicy};
    pub use icicle_pmu::{CounterArch, CsrFile};
    pub use icicle_rocket::{Rocket, RocketConfig};
    pub use icicle_soc::{Soc, SocBuilder, SocJobs, SocMix, SocReport};
    pub use icicle_tma::{TmaBreakdown, TmaInput, TmaModel};
    pub use icicle_trace::{Trace, TraceChannel, TraceConfig};
    pub use icicle_verify::{
        run_fuzz, run_matrix, verify_cell, FuzzOptions, FuzzReport, MatrixOptions, MatrixReport,
    };
    pub use icicle_vlsi::evaluate as evaluate_vlsi;
    pub use icicle_workloads::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let model = TmaModel::rocket();
        assert_eq!(model.commit_width, 1);
        let _ = BoomConfig::large();
        let _ = RocketConfig::default();
        // Campaigns ride along: one workload over the default core pair.
        let spec = CampaignSpec::new("facade").workloads(["qsort"]);
        assert_eq!(spec.cells().len(), 2);
    }
}
