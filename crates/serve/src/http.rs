//! A minimal HTTP/1.1 layer over `std::net`.
//!
//! The workspace keeps its dependency set to the simulation essentials,
//! so the analysis server carries its own request parser and response
//! writer instead of pulling in a framework. The subset is deliberately
//! small and strict:
//!
//! * one request per connection (`Connection: close` on every
//!   response), which sidesteps keep-alive bookkeeping entirely;
//! * request bodies are delimited by `Content-Length` only — no chunked
//!   transfer encoding in either direction;
//! * streaming responses (the progress endpoint) omit `Content-Length`
//!   and let connection close delimit the body, which is valid
//!   HTTP/1.1 and trivially parseable by the hand-rolled client.
//!
//! Hard limits keep a misbehaving peer from wedging the server: the
//! head (request line + headers) is capped at 16 KiB and bodies at
//! 8 MiB; anything larger is an error the handler turns into a 4xx.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Header name/value pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not UTF-8".to_string())
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns a human-readable message for malformed or oversized
/// requests; the caller answers with a 400.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut head = Vec::new();
    // Read byte-wise up to the blank line; BufReader keeps this cheap.
    loop {
        let mut line = Vec::new();
        reader
            .read_until(b'\n', &mut line)
            .map_err(|e| format!("read error: {e}"))?;
        if line.is_empty() {
            return Err("connection closed mid-request".to_string());
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err("request head exceeds 16 KiB".to_string());
        }
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = head.lines();
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| format!("bad content-length `{v}`"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err("request body exceeds 8 MiB".to_string());
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// The standard reason phrase for the handful of statuses the server
/// uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with `Content-Length` and
/// `Connection: close`.
///
/// # Errors
///
/// Propagates the underlying socket error.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes the head of a streaming response: no `Content-Length`, the
/// body is delimited by connection close. The caller writes the body
/// incrementally (JSONL lines) and then drops the stream.
///
/// # Errors
///
/// Propagates the underlying socket error.
pub fn write_stream_head(stream: &mut TcpStream, status: u16) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/jsonl\r\nConnection: close\r\n\r\n",
        reason(status),
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// A parsed HTTP response (client side).
#[derive(Debug)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// The full body (read to `Content-Length` or connection close).
    pub body: String,
}

/// Performs one request against `addr` and reads the full response.
///
/// # Errors
///
/// Returns a message for connection failures or malformed responses.
pub fn roundtrip(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write to `{addr}` failed: {e}"))?;
    read_response(&mut stream)
}

/// Reads a full response (status + body) from `stream`.
///
/// # Errors
///
/// Returns a message for malformed responses.
pub fn read_response(stream: &mut TcpStream) -> Result<ClientResponse, String> {
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read failed: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("malformed response: no blank line")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    Ok(ClientResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn parse_str(raw: &str) -> Result<Request, String> {
        // Round-trip through a real socket pair so the parser is tested
        // against the exact API the server uses.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let parsed = read_request(&mut stream);
        writer.join().unwrap();
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_str(
            "POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body_text().unwrap(), "hello world");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_str("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_str("not http at all\r\n\r\n").is_err());
        assert!(parse_str("GET / FTP/9\r\n\r\n").is_err());
        assert!(parse_str("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn server_and_client_halves_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.path, "/echo");
            write_response(&mut stream, 200, req.body_text().unwrap()).unwrap();
        });
        let resp = roundtrip(&addr, "POST", "/echo", Some("{\"a\":1}")).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"a\":1}");
    }
}
