//! Slot-granular temporal TMA — the "expand the temporal TMA model"
//! item of the paper's future work (§VII).
//!
//! [`TemporalTma`](crate::TemporalTma) classifies whole *cycles*; this
//! module classifies every *slot* (cycle × commit lane) using per-lane
//! trace channels, yielding a full four-class breakdown computable
//! purely from a trace — an independent cross-check of the counter-based
//! Table II model:
//!
//! * a lane that retires a µop that cycle → **Retiring**;
//! * otherwise, if the core is recovering → **Bad Speculation**;
//! * otherwise, if the lane's fetch-bubble wire is high → **Frontend**;
//! * otherwise → **Backend** (the lane had a µop available but the
//!   backend did not complete one).

use icicle_events::EventId;

use crate::trace::{Trace, TraceChannel};

/// Slot totals per class.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct SlotReport {
    /// Total slots observed (`cycles × width`).
    pub slots: u64,
    pub retiring: u64,
    pub bad_speculation: u64,
    pub frontend: u64,
    pub backend: u64,
}

impl SlotReport {
    /// Fraction helpers (0.0 on an empty report).
    pub fn retiring_fraction(&self) -> f64 {
        self.fraction(self.retiring)
    }
    pub fn bad_speculation_fraction(&self) -> f64 {
        self.fraction(self.bad_speculation)
    }
    pub fn frontend_fraction(&self) -> f64 {
        self.fraction(self.frontend)
    }
    pub fn backend_fraction(&self) -> f64 {
        self.fraction(self.backend)
    }

    fn fraction(&self, n: u64) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            n as f64 / self.slots as f64
        }
    }
}

/// The class of one slot (cycle × commit lane).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SlotClass {
    Retiring,
    BadSpeculation,
    Frontend,
    Backend,
}

impl SlotClass {
    /// Canonical snake_case name, matching the verify report's class
    /// order.
    pub fn name(self) -> &'static str {
        match self {
            SlotClass::Retiring => "retiring",
            SlotClass::BadSpeculation => "bad_speculation",
            SlotClass::Frontend => "frontend",
            SlotClass::Backend => "backend",
        }
    }
}

/// The slot-granular classifier.
#[derive(Clone, Debug)]
pub struct SlotTemporalTma {
    retired_bits: Vec<usize>,
    bubble_bits: Vec<usize>,
    recovering_bit: usize,
}

impl SlotTemporalTma {
    /// The trace channels this analysis requires for a `width`-wide core:
    /// per-lane `Uops-retired` and `Fetch-bubbles` wires plus the scalar
    /// `Recovering` signal. Pass the result to
    /// [`TraceConfig::new`](crate::TraceConfig::new).
    pub fn required_channels(width: usize) -> Vec<TraceChannel> {
        let mut channels = Vec::with_capacity(2 * width + 1);
        for lane in 0..width {
            channels.push(TraceChannel::lane(EventId::UopsRetired, lane));
        }
        for lane in 0..width {
            channels.push(TraceChannel::lane(EventId::FetchBubbles, lane));
        }
        channels.push(TraceChannel::scalar(EventId::Recovering));
        channels
    }

    /// Binds the classifier to a trace containing
    /// [`required_channels`](Self::required_channels) for `width` lanes.
    ///
    /// Returns `None` if any channel is missing.
    pub fn for_trace(trace: &Trace, width: usize) -> Option<SlotTemporalTma> {
        let cfg = trace.config();
        let retired_bits = (0..width)
            .map(|l| cfg.index_of(TraceChannel::lane(EventId::UopsRetired, l)))
            .collect::<Option<Vec<_>>>()?;
        let bubble_bits = (0..width)
            .map(|l| cfg.index_of(TraceChannel::lane(EventId::FetchBubbles, l)))
            .collect::<Option<Vec<_>>>()?;
        let recovering_bit = cfg.index_of(TraceChannel::scalar(EventId::Recovering))?;
        Some(SlotTemporalTma {
            retired_bits,
            bubble_bits,
            recovering_bit,
        })
    }

    /// The commit width the classifier was bound for.
    pub fn width(&self) -> usize {
        self.retired_bits.len()
    }

    /// Classifies one slot. This is the *only* place the classification
    /// rules live: [`analyze`](Self::analyze) and the Perfetto timeline
    /// exporter both go through it, so a rendered timeline can never
    /// drift from the aggregate report.
    pub fn classify(&self, trace: &Trace, cycle: u64, lane: usize) -> SlotClass {
        if trace.is_high(self.retired_bits[lane], cycle) {
            SlotClass::Retiring
        } else if trace.is_high(self.recovering_bit, cycle) {
            SlotClass::BadSpeculation
        } else if trace.is_high(self.bubble_bits[lane], cycle) {
            SlotClass::Frontend
        } else {
            SlotClass::Backend
        }
    }

    /// Classifies every slot in the trace.
    pub fn analyze(&self, trace: &Trace) -> SlotReport {
        let width = self.retired_bits.len();
        let mut report = SlotReport {
            slots: trace.len() as u64 * width as u64,
            ..SlotReport::default()
        };
        for cycle in trace.first_cycle()..trace.end_cycle() {
            for lane in 0..width {
                match self.classify(trace, cycle, lane) {
                    SlotClass::Retiring => report.retiring += 1,
                    SlotClass::BadSpeculation => report.bad_speculation += 1,
                    SlotClass::Frontend => report.frontend += 1,
                    SlotClass::Backend => report.backend += 1,
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use icicle_events::EventVector;

    fn classify(pattern: &[(&[usize], &[usize], bool)]) -> SlotReport {
        // pattern: per cycle (retired lanes, bubble lanes, recovering)
        let cfg = TraceConfig::new(SlotTemporalTma::required_channels(3)).unwrap();
        let mut t = Trace::new(cfg);
        for (retired, bubbles, recovering) in pattern {
            let mut v = EventVector::new();
            for &l in *retired {
                v.raise_lane(EventId::UopsRetired, l);
            }
            for &l in *bubbles {
                v.raise_lane(EventId::FetchBubbles, l);
            }
            if *recovering {
                v.raise(EventId::Recovering);
            }
            t.record(&v);
        }
        let tma = SlotTemporalTma::for_trace(&t, 3).unwrap();
        tma.analyze(&t)
    }

    #[test]
    fn full_retirement_is_all_retiring() {
        let all: &[usize] = &[0, 1, 2];
        let none: &[usize] = &[];
        let r = classify(&[(all, none, false); 4]);
        assert_eq!(r.slots, 12);
        assert_eq!(r.retiring, 12);
        assert_eq!(r.backend, 0);
    }

    #[test]
    fn classes_partition_the_slots() {
        let r = classify(&[
            (&[0, 1][..], &[2][..], false), // 2 retiring, 1 frontend
            (&[][..], &[][..], true),       // 3 bad speculation
            (&[0][..], &[][..], false),     // 1 retiring, 2 backend
        ]);
        assert_eq!(r.slots, 9);
        assert_eq!(r.retiring, 3);
        assert_eq!(r.frontend, 1);
        assert_eq!(r.bad_speculation, 3);
        assert_eq!(r.backend, 2);
        assert_eq!(
            r.retiring + r.frontend + r.bad_speculation + r.backend,
            r.slots
        );
    }

    #[test]
    fn recovery_outranks_bubbles_but_not_retirement() {
        // A retiring lane during recovery stays Retiring (e.g. older
        // µops draining while the front-end recovers).
        let r = classify(&[(&[0][..], &[1, 2][..], true)]);
        assert_eq!(r.retiring, 1);
        assert_eq!(r.bad_speculation, 2);
        assert_eq!(r.frontend, 0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = classify(&[
            (&[0, 1, 2][..], &[][..], false),
            (&[][..], &[0, 1, 2][..], false),
            (&[][..], &[][..], true),
            (&[][..], &[][..], false),
        ]);
        let sum = r.retiring_fraction()
            + r.bad_speculation_fraction()
            + r.frontend_fraction()
            + r.backend_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_channels_yield_none() {
        let cfg = TraceConfig::new(vec![TraceChannel::scalar(EventId::Cycles)]).unwrap();
        let t = Trace::new(cfg);
        assert!(SlotTemporalTma::for_trace(&t, 3).is_none());
    }
}
