//! # icicle-events
//!
//! The performance-event vocabulary of the Icicle reproduction.
//!
//! Table I of the paper lists every PMU event on Rocket and BOOM, grouped
//! into *event sets* (Basic, Microarchitectural, Memory) plus the TMA set
//! added by Icicle. This crate defines:
//!
//! * [`EventId`] — every event, with its [`EventSet`], display name, and
//!   whether it is one of the events Icicle adds;
//! * [`EventVector`] — the per-cycle bundle of asserted event signals,
//!   including per-lane assertion masks for superscalar events
//!   (Fetch-bubbles, Uops-issued, D$-blocked, Uops-retired);
//! * [`LaneCounts`] — an accumulator for per-lane totals (Table V).
//!
//! Cores raise events into an [`EventVector`] each cycle; the PMU counter
//! architectures in `icicle-pmu` and the tracer in `icicle-trace` both
//! consume that vector, mirroring how the RTL routes event wires to both
//! the CSR file and the TracerV bridge.

mod source;
mod vector;

pub use source::EventCore;
pub use vector::{EventCounts, EventVector, LaneCounts, MAX_LANES};

/// An event set: events mapped to the same counter must share a set (§II-A).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EventSet {
    /// Architectural events (cycles, retirement, instruction mix).
    Basic,
    /// Microarchitectural stall/flush events.
    Microarch,
    /// Memory-system events (cache and TLB misses).
    Memory,
    /// The events Icicle adds for TMA.
    Tma,
}

impl EventSet {
    /// All event sets, in encoding order.
    pub const ALL: [EventSet; 4] = [
        EventSet::Basic,
        EventSet::Microarch,
        EventSet::Memory,
        EventSet::Tma,
    ];

    /// The set's hardware encoding (the 8-bit event-set ID written to the
    /// counter control CSR).
    pub fn encoding(self) -> u8 {
        match self {
            EventSet::Basic => 0,
            EventSet::Microarch => 1,
            EventSet::Memory => 2,
            EventSet::Tma => 3,
        }
    }
}

macro_rules! events {
    ($(($variant:ident, $name:literal, $set:ident, $new:literal)),+ $(,)?) => {
        /// A hardware performance event (Table I of the paper).
        ///
        /// The enum covers the union of Rocket and BOOM events; each core
        /// raises only the subset its pipeline implements.
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        #[repr(u8)]
        pub enum EventId {
            $($variant),+
        }

        impl EventId {
            /// Number of distinct events.
            pub const COUNT: usize = [$(EventId::$variant),+].len();

            /// Every event, in encoding order.
            pub const ALL: [EventId; EventId::COUNT] = [$(EventId::$variant),+];

            /// The event's display name as printed in the paper's Table I.
            pub fn name(self) -> &'static str {
                match self {
                    $(EventId::$variant => $name),+
                }
            }

            /// The event set this event belongs to.
            pub fn set(self) -> EventSet {
                match self {
                    $(EventId::$variant => EventSet::$set),+
                }
            }

            /// Whether this event is one of the new events Icicle adds
            /// (starred in Table I).
            pub fn is_new(self) -> bool {
                match self {
                    $(EventId::$variant => $new),+
                }
            }
        }
    };
}

events! {
    // --- Basic ---------------------------------------------------------
    (Cycles,              "Cycles",             Basic,     false),
    (InstrRetired,        "Instr.R.",           Basic,     false),
    (LoadRetired,         "Load",               Basic,     false),
    (StoreRetired,        "Store",              Basic,     false),
    (AtomicRetired,       "Atomic",             Basic,     false),
    (SystemRetired,       "System",             Basic,     false),
    (ArithRetired,        "Arith",              Basic,     false),
    (BranchRetired,       "Branch",             Basic,     false),
    (FenceRetired,        "Fence-retired",      Basic,     true),
    (Exception,           "Exception",          Basic,     false),
    // --- Microarchitectural ---------------------------------------------
    (LoadUseInterlock,    "Load-Use-inter.",    Microarch, false),
    (LongLatencyInterlock,"Long-latency inter.",Microarch, false),
    (CsrInterlock,        "Csr-inter.",         Microarch, false),
    (MulDivInterlock,     "Mul/Div-interlock",  Microarch, false),
    (CfInterlock,         "CF-inter.",          Microarch, false),
    (BranchMispredict,    "Br-mispred.",        Microarch, false),
    (CfTargetMispredict,  "CF-targ.mis.",       Microarch, false),
    (Flush,               "Flush",              Microarch, false),
    (Replay,              "Replay",             Microarch, false),
    (BranchResolved,      "Branch resolved",    Microarch, false),
    // --- Memory ----------------------------------------------------------
    (ICacheMiss,          "I$-miss",            Memory,    false),
    (DCacheMiss,          "D$-miss",            Memory,    false),
    (DCacheRelease,       "D$-release",         Memory,    false),
    (ITlbMiss,            "ITLB-miss",          Memory,    false),
    (DTlbMiss,            "DTLB-miss",          Memory,    false),
    (L2TlbMiss,           "L2-TLB-miss",        Memory,    false),
    // --- TMA (added by Icicle) --------------------------------------------
    (UopsIssued,          "Uops-issued",        Tma,       true),
    (FetchBubbles,        "Fetch-bubbles",      Tma,       true),
    (Recovering,          "Recovering",         Tma,       true),
    (UopsRetired,         "Uops-retired",       Tma,       true),
    (ICacheBlocked,       "I$-blocked",         Tma,       true),
    (DCacheBlocked,       "D$-blocked",         Tma,       true),
}

impl EventId {
    /// The event's bit position inside its set's 56-bit event mask.
    pub fn mask_bit(self) -> u8 {
        let mut bit = 0u8;
        for e in EventId::ALL {
            if e == self {
                return bit;
            }
            if e.set() == self.set() {
                bit += 1;
            }
        }
        unreachable!("event not in ALL")
    }

    /// Looks up an event by its set and mask bit.
    pub fn from_set_bit(set: EventSet, bit: u8) -> Option<EventId> {
        EventId::ALL
            .into_iter()
            .filter(|e| e.set() == set)
            .nth(bit as usize)
    }

    /// All events in a set, in mask-bit order.
    pub fn in_set(set: EventSet) -> impl Iterator<Item = EventId> {
        EventId::ALL.into_iter().filter(move |e| e.set() == set)
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icicle_adds_exactly_seven_boom_events() {
        // The paper adds 7 new events to BOOM: Uops-issued, Fetch-bubbles,
        // Recovering, Uops-retired, I$-blocked, D$-blocked, Fence-retired.
        let new: Vec<_> = EventId::ALL.into_iter().filter(|e| e.is_new()).collect();
        assert_eq!(new.len(), 7);
        assert!(new.contains(&EventId::UopsIssued));
        assert!(new.contains(&EventId::FenceRetired));
    }

    #[test]
    fn mask_bits_are_unique_within_a_set() {
        for set in EventSet::ALL {
            let bits: Vec<u8> = EventId::in_set(set).map(|e| e.mask_bit()).collect();
            let mut sorted = bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(bits.len(), sorted.len(), "duplicate mask bit in {set:?}");
            assert!(bits.len() <= 56, "event mask is 56 bits wide");
        }
    }

    #[test]
    fn set_bit_round_trip() {
        for e in EventId::ALL {
            assert_eq!(EventId::from_set_bit(e.set(), e.mask_bit()), Some(e));
        }
        assert_eq!(EventId::from_set_bit(EventSet::Basic, 55), None);
    }

    #[test]
    fn names_match_paper_table() {
        assert_eq!(EventId::ICacheBlocked.name(), "I$-blocked");
        assert_eq!(EventId::FetchBubbles.to_string(), "Fetch-bubbles");
        assert_eq!(EventId::Cycles.set(), EventSet::Basic);
        assert_eq!(EventId::ICacheMiss.set(), EventSet::Memory);
        assert_eq!(EventId::Recovering.set(), EventSet::Tma);
    }

    #[test]
    fn set_encodings_are_distinct() {
        let encodings: Vec<u8> = EventSet::ALL.iter().map(|s| s.encoding()).collect();
        let mut sorted = encodings.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(encodings.len(), sorted.len());
    }
}
