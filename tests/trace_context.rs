//! End-to-end trace correlation: one HTTP submission yields exactly one
//! trace, surfaced in the `X-Icicle-Trace` response header and the job
//! status document, and every span and event reachable from that
//! trace_id forms a single well-parented tree spanning the server
//! handler thread, the executor, the campaign cell workers, and the SoC
//! core drivers. The canonicalized tree is byte-identical at any
//! `--jobs` count and under either SoC engine (`lockstep` /
//! `parallel`): parallelism may reorder and re-thread the records, but
//! never change what happened.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use icicle_campaign::SocJobs;
use icicle_obs::{self as obs, FieldValue, Json, Record, RecordKind, RingCollector};
use icicle_serve::{http, AnalysisService, Client, Server, ServiceConfig, Submission};

/// The tracing runtime is process-global; tests that install a
/// collector must not overlap.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One single-core cell and one dual-core SoC cell: the smallest grid
/// that exercises both the plain driver and the multi-core engines the
/// `soc_jobs` knob selects between.
const SPEC: &str = "\
name = trace-ctx
workloads = vvadd
cores = rocket, soc-2xrocket
archs = add-wires
seeds = 0
";

const POLL: Duration = Duration::from_millis(10);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icicle-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(data_dir: &Path, jobs: usize) -> (Arc<AnalysisService>, SocketAddr) {
    let service = Arc::new(
        AnalysisService::open(ServiceConfig {
            data_dir: data_dir.to_path_buf(),
            jobs,
            ..ServiceConfig::default()
        })
        .expect("open service"),
    );
    let _executors = service.start();
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run());
    (service, addr)
}

/// Renders the records belonging to `trace` as one canonical tree:
/// span/event names with their deterministic fields, children sorted,
/// ids/threads/timestamps erased. Two runs that did the same work
/// render the same string regardless of worker count or interleaving.
fn canonical_tree(records: &[Record], trace: u64) -> String {
    // Field values that legitimately vary with the execution config —
    // masked so the tree captures *what ran*, not *how wide*.
    fn masked(span: &str, field: &str) -> bool {
        span == "campaign.run" && field == "jobs"
    }
    fn label(name: &str, fields: &[(&'static str, FieldValue)]) -> String {
        let mut out = String::from(name);
        let mut rendered: Vec<String> = fields
            .iter()
            .filter(|(k, _)| !masked(name, k))
            .map(|(k, v)| {
                let value = match v {
                    FieldValue::Bool(b) => b.to_string(),
                    FieldValue::U64(n) => n.to_string(),
                    FieldValue::F64(x) => format!("{x}"),
                    FieldValue::Str(s) => s.clone(),
                };
                format!("{k}={value}")
            })
            .collect();
        rendered.sort();
        out.push('{');
        out.push_str(&rendered.join(","));
        out.push('}');
        out
    }

    let mine: Vec<&Record> = records.iter().filter(|r| r.trace == trace).collect();
    assert!(!mine.is_empty(), "no records carry trace {trace:#x}");

    let mut labels: HashMap<u64, String> = HashMap::new();
    let mut children: HashMap<Option<u64>, Vec<String>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for r in &mine {
        match r.kind {
            RecordKind::SpanStart => {
                labels.insert(r.id, label(r.name, &r.fields));
                order.push(r.id);
                if let Some(parent) = r.parent {
                    assert!(
                        labels.contains_key(&parent),
                        "span {} `{}` parents onto {parent}, which is not in this trace",
                        r.id,
                        r.name
                    );
                }
            }
            RecordKind::SpanEnd => {}
            RecordKind::Event => {
                if let Some(parent) = r.parent {
                    assert!(
                        labels.contains_key(&parent),
                        "event `{}` parents onto {parent}, which is not in this trace",
                        r.name
                    );
                }
                children
                    .entry(r.parent)
                    .or_default()
                    .push(label(r.name, &r.fields));
            }
        }
    }
    // Spans attach to their parents after all labels exist, rendered
    // top-down with children sorted so interleaving cannot matter.
    let mut parent_of: HashMap<u64, Option<u64>> = HashMap::new();
    for r in &mine {
        if r.kind == RecordKind::SpanStart {
            parent_of.insert(r.id, r.parent);
        }
    }
    fn render(
        id: u64,
        labels: &HashMap<u64, String>,
        span_children: &HashMap<u64, Vec<u64>>,
        event_children: &HashMap<Option<u64>, Vec<String>>,
    ) -> String {
        let mut kids: Vec<String> = Vec::new();
        for child in span_children.get(&id).cloned().unwrap_or_default() {
            kids.push(render(child, labels, span_children, event_children));
        }
        kids.extend(event_children.get(&Some(id)).cloned().unwrap_or_default());
        kids.sort();
        let mut out = labels[&id].clone();
        if !kids.is_empty() {
            out.push('(');
            out.push_str(&kids.join(" "));
            out.push(')');
        }
        out
    }
    let mut span_children: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut roots: Vec<u64> = Vec::new();
    for id in &order {
        match parent_of[id] {
            Some(parent) => span_children.entry(parent).or_default().push(*id),
            None => roots.push(*id),
        }
    }
    let mut rendered: Vec<String> = roots
        .iter()
        .map(|id| render(*id, &labels, &span_children, &children))
        .collect();
    rendered.extend(children.get(&None).cloned().unwrap_or_default());
    rendered.sort();
    rendered.join("\n")
}

/// Boots a fresh server, submits [`SPEC`] under the given execution
/// config, and returns the canonical trace tree plus the trace hex the
/// server reported.
fn run_traced(tag: &str, jobs: usize, soc_jobs: SocJobs) -> (String, String) {
    let dir = scratch_dir(tag);
    let ring = Arc::new(RingCollector::new(65_536));
    obs::install(
        obs::Level::Info,
        Arc::clone(&ring) as Arc<dyn obs::Collector>,
    );
    let (_service, addr) = boot(&dir, jobs);
    let api = Client::new(addr.to_string());
    let id = api
        .submit(
            &Submission::campaign(SPEC)
                .with_client("tracer")
                .with_soc_jobs(soc_jobs),
        )
        .expect("submit");
    let status = api.wait(id, POLL).expect("poll to completion");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));

    // The wire contract: the status document and the response header
    // name the same trace.
    let trace_hex = status
        .get("trace")
        .and_then(Json::as_str)
        .expect("status document carries the trace")
        .to_string();
    let raw = http::roundtrip(&addr.to_string(), "GET", &format!("/v1/jobs/{id}"), None)
        .expect("raw status roundtrip");
    assert_eq!(
        raw.header("x-icicle-trace"),
        Some(trace_hex.as_str()),
        "X-Icicle-Trace must echo the job's trace"
    );

    obs::shutdown();
    let trace = obs::TraceId::parse_hex(&trace_hex)
        .expect("trace hex round-trips")
        .as_u64();
    let tree = canonical_tree(&ring.records(), trace);
    let _ = std::fs::remove_dir_all(&dir);
    (tree, trace_hex)
}

#[test]
fn one_submission_yields_one_well_parented_trace_tree() {
    let _guard = serial();
    let (tree, trace_hex) = run_traced("shape", 2, SocJobs::Lockstep);
    assert_eq!(trace_hex.len(), 16, "trace is 16 lowercase hex digits");

    // Exactly one root: the admission span on the handler thread.
    let roots: Vec<&str> = tree.lines().collect();
    assert_eq!(roots.len(), 1, "one trace, one root:\n{tree}");
    assert!(
        roots[0].starts_with("server.submit{"),
        "the root is the admission span:\n{tree}"
    );
    // The full request→core chain hangs off it, in nesting order.
    for (outer, inner) in [
        ("server.submit", "server.job.execute"),
        ("server.job.execute", "campaign.run"),
        ("campaign.run", "campaign.cell"),
        ("campaign.cell", "soc.core"),
    ] {
        let outer_at = tree
            .find(outer)
            .unwrap_or_else(|| panic!("{outer} missing:\n{tree}"));
        let inner_at = tree
            .find(inner)
            .unwrap_or_else(|| panic!("{inner} missing:\n{tree}"));
        assert!(
            outer_at < inner_at,
            "{inner} must nest inside {outer}:\n{tree}"
        );
    }
    assert!(tree.contains("server.job.queued"), "{tree}");
    // Both SoC cores report under the same cell, stamped with the trace.
    assert!(tree.contains("soc.core{core=0"), "{tree}");
    assert!(tree.contains("soc.core{core=1"), "{tree}");
}

#[test]
fn the_trace_tree_is_identical_at_any_worker_count_and_engine() {
    let _guard = serial();
    let (one_lockstep, _) = run_traced("j1-lock", 1, SocJobs::Lockstep);
    let (four_lockstep, _) = run_traced("j4-lock", 4, SocJobs::Lockstep);
    let (one_parallel, _) = run_traced("j1-par", 1, SocJobs::Parallel(4));
    let (four_parallel, _) = run_traced("j4-par", 4, SocJobs::Parallel(4));
    assert_eq!(
        one_lockstep, four_lockstep,
        "--jobs must not change the canonical trace tree"
    );
    assert_eq!(
        one_lockstep, one_parallel,
        "the SoC engine must not change the canonical trace tree"
    );
    assert_eq!(
        one_lockstep, four_parallel,
        "worker count and engine together must not change the tree"
    );
}
