//! Compares the three counter implementations of §IV-B on the same
//! workload: exact add-wires and scalar values, the distributed
//! counters' bounded undercount, and the stock OR-semantics loss — plus
//! each implementation's modelled physical cost (Fig. 9).
//!
//! ```sh
//! cargo run --release --example counter_architectures
//! ```

use icicle::events::EventId;
use icicle::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = icicle::workloads::micro::rsort(1 << 10);
    let stream = workload.execute()?;

    println!(
        "counter architectures on `{}` (LargeBoom):\n",
        workload.name()
    );
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>10}",
        "impl", "uops-issued", "uops-retired", "fetch-bub.", "undercount"
    );
    for arch in [
        CounterArch::Stock,
        CounterArch::Scalar,
        CounterArch::AddWires,
        CounterArch::Distributed,
    ] {
        let mut core = Boom::new(
            BoomConfig::large(),
            stream.clone(),
            workload.program().clone(),
        );
        let report = Perf::with_options(PerfOptions {
            arch,
            ..PerfOptions::default()
        })
        .run(&mut core)?;
        let under: u64 = [
            EventId::UopsIssued,
            EventId::UopsRetired,
            EventId::FetchBubbles,
        ]
        .into_iter()
        .map(|e| report.undercount(e))
        .sum();
        println!(
            "{:<12} {:>14} {:>14} {:>12} {:>10}",
            format!("{arch:?}"),
            report.hw_counts.get(EventId::UopsIssued),
            report.hw_counts.get(EventId::UopsRetired),
            report.hw_counts.get(EventId::FetchBubbles),
            under
        );
    }

    println!("\nmodelled post-placement cost on LargeBoom (Fig. 9):\n");
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>12}",
        "impl", "power", "area", "wirelength", "CSR delay"
    );
    for arch in [
        CounterArch::Scalar,
        CounterArch::AddWires,
        CounterArch::Distributed,
    ] {
        let r = evaluate_vlsi(BoomSize::Large, arch);
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>11.2}% {:>11.3}x",
            format!("{arch:?}"),
            r.power_overhead_pct(),
            r.area_overhead_pct(),
            r.wirelength_overhead_pct(),
            r.normalized_csr_delay()
        );
    }
    Ok(())
}
