//! # icicle-vlsi
//!
//! An analytic post-placement cost model for the counter architectures
//! (Fig. 9 of the paper).
//!
//! The paper pushes each BOOM size through a Cadence flow on the ASAP7
//! PDK and reports post-placement power, area, wirelength, and the
//! longest combinational path through the CSR file. That flow is
//! proprietary; this crate substitutes a first-order analytic model with
//! ASAP7-flavoured unit costs, driven by the same structural quantities
//! ([`HardwareFootprint`]) the RTL implies:
//!
//! * register bits and adder stages set cell area and dynamic power;
//! * wires from event sources to the centrally-placed CSR file set
//!   wirelength (long wires cross ~half the die edge; distributed
//!   counters keep most wiring local to the source);
//! * the add-wires adder *chain* adds combinational delay per source,
//!   while the distributed arbiter adds one constant mux stage — which
//!   reproduces Fig. 9b's crossover: adders win at Small/Medium, lose
//!   from Large up.
//!
//! The model is calibrated so the worst-case overheads land at the
//! paper's reported envelope: ≈4.15% power, ≈1.54% area, ≈9.93%
//! wirelength, with every configuration meeting 200 MHz.
//!
//! ```
//! use icicle_boom::BoomSize;
//! use icicle_pmu::CounterArch;
//! use icicle_vlsi::evaluate;
//!
//! let r = evaluate(BoomSize::Large, CounterArch::Distributed);
//! assert!(r.meets_200mhz());
//! assert!(r.power_overhead_pct() < 5.0);
//! ```

mod model;

pub use icicle_pmu::HardwareFootprint;
pub use model::{
    evaluate, longest_pmu_wire_um, tma_counter_set, BaselineDesign, PdkParams, PlacementReport,
};
