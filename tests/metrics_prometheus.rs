//! Golden snapshot of the Prometheus text exposition.
//!
//! A registry populated with fixed values — one instrument per family
//! the server actually registers (job counters, queue telemetry, engine
//! health, flight-recorder drops) — must render byte-for-byte the text
//! committed at `tests/golden/metrics_prometheus.txt` (regenerate with
//! `ICICLE_UPDATE_GOLDEN=1`). A second pass cross-checks the two
//! renderings of the same registry: every value in the Prometheus text
//! must agree with the full JSON snapshot, so the two endpoints can
//! never drift apart.

use std::path::Path;

use icicle::verify::compare_or_update;
use icicle_obs::{Json, MetricsRegistry, SKIP_SPAN_BOUNDS};

/// Queue/lease wait bounds, in microseconds (mirrors the serve layer).
const WAIT_BOUNDS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// A registry with one instrument per server family, every value fixed.
fn fixture() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.counter("server.jobs.submitted").add(5);
    registry.counter("server.jobs.done").add(3);
    registry.counter("campaign.cells.simulated").add(12);
    registry.gauge("campaign.progress.done").set(12.0);

    // Engine health: volatile (excluded from the canonical snapshot,
    // present in full/Prometheus renders).
    registry.counter_volatile("engine.skip.spans").add(7);
    registry.counter_volatile("engine.skip.cycles").add(4_096);
    registry.counter_volatile("engine.skip.probe_misses").add(2);
    registry
        .counter_volatile("engine.l2.core0.null_messages")
        .add(31);
    registry
        .counter_volatile("engine.l2.core0.stall_waits")
        .add(4);
    registry
        .gauge_volatile("server.queue.normal.depth")
        .set(2.0);
    registry.gauge_volatile("obs.flight.dropped").set(0.0);

    let spans = registry.histogram_volatile("engine.skip.span_cycles", &SKIP_SPAN_BOUNDS);
    spans.accumulate(&[1, 2, 0, 3, 0, 0, 1], 7, 4_096);
    let lease = registry.histogram_volatile("campaign.lease.wait_us", &WAIT_BOUNDS_US);
    for v in [50, 800, 12_000] {
        lease.observe(v);
    }
    let queue = registry.histogram_volatile("server.queue.normal.wait_us", &WAIT_BOUNDS_US);
    queue.observe(250);
    registry
}

#[test]
fn prometheus_exposition_matches_the_golden_snapshot() {
    let rendered = fixture().render_prometheus();
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_prometheus.txt");
    compare_or_update(&golden, &rendered).expect("prometheus exposition matches the snapshot");
}

#[test]
fn prometheus_and_json_renderings_agree_on_every_value() {
    let registry = fixture();
    let text = registry.render_prometheus();
    let full = Json::parse(&registry.render_full()).expect("full snapshot parses");

    // Every Prometheus sample line, keyed by its series name.
    let samples: Vec<(&str, &str)> = text
        .lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .map(|line| line.split_once(' ').expect("name value"))
        .collect();
    let sample = |name: &str| -> &str {
        samples
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("no Prometheus sample `{name}`:\n{text}"))
            .1
    };

    let counters = full.get("counters").expect("counters");
    if let Json::Object(pairs) = counters {
        assert!(!pairs.is_empty());
        for (name, value) in pairs {
            let series = format!("icicle_{}", name.replace(['.', '-'], "_"));
            assert_eq!(
                sample(&series).parse::<u64>().ok(),
                value.as_u64(),
                "counter {name} drifted between JSON and Prometheus"
            );
        }
    } else {
        panic!("counters is not an object");
    }

    let gauges = full.get("gauges").expect("gauges");
    if let Json::Object(pairs) = gauges {
        for (name, value) in pairs {
            let series = format!("icicle_{}", name.replace(['.', '-'], "_"));
            let json_value = value.as_f64().expect("gauge is numeric");
            let prom_value: f64 = sample(&series).parse().expect("gauge sample parses");
            assert!(
                (json_value - prom_value).abs() < 1e-6,
                "gauge {name}: JSON {json_value} vs Prometheus {prom_value}"
            );
        }
    } else {
        panic!("gauges is not an object");
    }

    let histograms = full.get("histograms").expect("histograms");
    if let Json::Object(pairs) = histograms {
        assert!(!pairs.is_empty());
        for (name, doc) in pairs {
            let series = format!("icicle_{}", name.replace(['.', '-'], "_"));
            assert_eq!(
                sample(&format!("{series}_count")).parse::<u64>().ok(),
                doc.get("count").and_then(Json::as_u64),
                "{name}_count drifted"
            );
            assert_eq!(
                sample(&format!("{series}_sum")).parse::<u64>().ok(),
                doc.get("sum").and_then(Json::as_u64),
                "{name}_sum drifted"
            );
            // JSON buckets are per-slot; Prometheus buckets are
            // cumulative. Fold and compare each `le` rung.
            let buckets = match doc.get("buckets") {
                Some(Json::Array(buckets)) => buckets,
                other => panic!("{name} buckets malformed: {other:?}"),
            };
            let mut cumulative = 0u64;
            for bucket in buckets {
                let le = bucket.get("le").and_then(Json::as_str).expect("le");
                cumulative += bucket.get("count").and_then(Json::as_u64).expect("count");
                let rung = if le == "+inf" {
                    format!("{series}_bucket{{le=\"+Inf\"}}")
                } else {
                    format!("{series}_bucket{{le=\"{le}\"}}")
                };
                assert_eq!(
                    sample(&rung).parse::<u64>().ok(),
                    Some(cumulative),
                    "{name} bucket le={le} drifted"
                );
            }
        }
    } else {
        panic!("histograms is not an object");
    }
}

#[test]
fn volatile_engine_health_stays_out_of_the_canonical_snapshot() {
    let registry = fixture();
    let canonical = registry.render();
    for name in [
        "engine.skip",
        "engine.l2",
        "server.queue",
        "campaign.lease",
        "obs.flight",
    ] {
        assert!(
            !canonical.contains(name),
            "`{name}` leaked into the canonical snapshot"
        );
    }
    let full = registry.render_full();
    for name in [
        "engine.skip.spans",
        "engine.l2.core0.null_messages",
        "server.queue.normal.depth",
        "campaign.lease.wait_us",
        "obs.flight.dropped",
    ] {
        assert!(full.contains(name), "`{name}` missing from the full render");
    }
}
