//! # icicle-bench
//!
//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper's evaluation (§V). Each `benches/` target is a
//! standalone binary (`harness = false`) that prints the same rows or
//! series the paper reports; `cargo bench` runs them all.
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig3_motivation` | Fig. 3 — Frontend event trace for mergesort |
//! | `fig7_rocket` | Fig. 7(a,b) — Rocket TMA, top level + backend |
//! | `fig7_boom` | Fig. 7(g–l) — BOOM TMA for SPEC proxies + micros |
//! | `fig7_case_studies` | Fig. 7(c,d,e,f,m,n) — the three case studies |
//! | `table5_per_lane` | Table V — per-lane event rates |
//! | `table6_overlap` | Table VI — temporal-TMA overlap bound |
//! | `fig8_temporal` | Fig. 8 — temporal example + recovery CDF |
//! | `fig9_vlsi` | Fig. 9 — post-placement overheads |
//! | `counters_comparison` | artifact §F — add-wires vs distributed |
//! | `sim_throughput` | Criterion micro-benchmarks of the simulator |

use icicle::prelude::*;

pub mod ledger;

/// Runs a workload on the default Rocket and returns the perf report.
pub fn rocket_report(workload: &Workload) -> PerfReport {
    rocket_report_with(workload, RocketConfig::default())
}

/// Runs a workload on an explicitly configured Rocket.
pub fn rocket_report_with(workload: &Workload, config: RocketConfig) -> PerfReport {
    let stream = workload
        .execute()
        .unwrap_or_else(|e| panic!("{} failed to execute: {e}", workload.name()));
    let mut core = Rocket::new(config, stream);
    Perf::new()
        .run(&mut core)
        .unwrap_or_else(|e| panic!("{} failed to measure: {e}", workload.name()))
}

/// Runs a workload on a BOOM configuration and returns the perf report.
pub fn boom_report(workload: &Workload, config: BoomConfig) -> PerfReport {
    boom_perf(workload, config, Perf::new())
}

/// Runs a workload on BOOM under a custom harness (tracing, counter
/// implementation, lane collection…).
pub fn boom_perf(workload: &Workload, config: BoomConfig, perf: Perf) -> PerfReport {
    let stream = workload
        .execute()
        .unwrap_or_else(|e| panic!("{} failed to execute: {e}", workload.name()));
    let mut core = Boom::new(config, stream, workload.program_arc());
    perf.run(&mut core)
        .unwrap_or_else(|e| panic!("{} failed to measure: {e}", workload.name()))
}

/// Prints the header of a top-level TMA table.
pub fn print_top_header() {
    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "ipc", "retiring", "bad-spec", "frontend", "backend"
    );
}

/// Prints one top-level TMA row.
pub fn print_top_row(name: &str, report: &PerfReport) {
    println!(
        "{:<18} {:>6.2} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
        name,
        report.ipc(),
        100.0 * report.tma.top.retiring,
        100.0 * report.tma.top.bad_speculation,
        100.0 * report.tma.top.frontend,
        100.0 * report.tma.top.backend,
    );
}

/// Prints the header of a second-level drill-down table.
pub fn print_levels_header() {
    println!(
        "{:<18} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "mach-clr", "br-misp", "fetch-lat", "pc-rest", "mem-bnd", "core-bnd"
    );
}

/// Prints one second-level drill-down row.
pub fn print_levels_row(name: &str, report: &PerfReport) {
    println!(
        "{:<18} {:>8.1}% {:>8.1}% | {:>8.1}% {:>8.1}% | {:>8.1}% {:>8.1}%",
        name,
        100.0 * report.tma.bad_spec.machine_clears,
        100.0 * report.tma.bad_spec.branch_mispredicts,
        100.0 * report.tma.frontend.fetch_latency,
        100.0 * report.tma.frontend.pc_resteers,
        100.0 * report.tma.backend.mem_bound,
        100.0 * report.tma.backend.core_bound,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run_end_to_end() {
        let w = icicle::workloads::micro::vvadd(128);
        let r = rocket_report(&w);
        assert!(r.cycles > 0);
        let b = boom_report(&w, BoomConfig::small());
        assert!(b.cycles > 0);
        print_top_header();
        print_top_row(w.name(), &b);
        print_levels_header();
        print_levels_row(w.name(), &b);
    }
}
