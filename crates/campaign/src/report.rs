//! Aggregate campaign results.
//!
//! A [`CellResult`] is the durable, cacheable distillation of one
//! [`icicle_perf::PerfReport`]: IPC, the full two-level TMA breakdown
//! (plus the TLB extension), and every hardware counter value. A
//! [`CampaignReport`] aggregates the cells of one campaign in grid
//! order with JSON and CSV emitters whose output is canonical —
//! byte-identical across thread counts and across cached re-runs.

use std::fmt;

use icicle_events::EventId;
use icicle_perf::PerfReport;

use crate::json::Json;
use crate::spec::{CellSpec, CoreSelect};
use icicle_pmu::CounterArch;

/// The TMA ratios a campaign keeps per cell (the columns of Fig. 7 and
/// Table VI).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct TmaSummary {
    pub retiring: f64,
    pub bad_speculation: f64,
    pub frontend: f64,
    pub backend: f64,
    pub machine_clears: f64,
    pub branch_mispredicts: f64,
    pub fetch_latency: f64,
    pub pc_resteers: f64,
    pub mem_bound: f64,
    pub core_bound: f64,
    pub itlb_bound: f64,
    pub dtlb_bound: f64,
}

impl TmaSummary {
    const FIELDS: [&'static str; 12] = [
        "retiring",
        "bad_speculation",
        "frontend",
        "backend",
        "machine_clears",
        "branch_mispredicts",
        "fetch_latency",
        "pc_resteers",
        "mem_bound",
        "core_bound",
        "itlb_bound",
        "dtlb_bound",
    ];

    fn values(&self) -> [f64; 12] {
        [
            self.retiring,
            self.bad_speculation,
            self.frontend,
            self.backend,
            self.machine_clears,
            self.branch_mispredicts,
            self.fetch_latency,
            self.pc_resteers,
            self.mem_bound,
            self.core_bound,
            self.itlb_bound,
            self.dtlb_bound,
        ]
    }

    fn from_values(v: [f64; 12]) -> TmaSummary {
        TmaSummary {
            retiring: v[0],
            bad_speculation: v[1],
            frontend: v[2],
            backend: v[3],
            machine_clears: v[4],
            branch_mispredicts: v[5],
            fetch_latency: v[6],
            pc_resteers: v[7],
            mem_bound: v[8],
            core_bound: v[9],
            itlb_bound: v[10],
            dtlb_bound: v[11],
        }
    }
}

/// Distills the full two-level TMA breakdown out of a perf report.
fn summarize_tma(report: &PerfReport) -> TmaSummary {
    let t = &report.tma;
    TmaSummary {
        retiring: t.top.retiring,
        bad_speculation: t.top.bad_speculation,
        frontend: t.top.frontend,
        backend: t.top.backend,
        machine_clears: t.bad_spec.machine_clears,
        branch_mispredicts: t.bad_spec.branch_mispredicts,
        fetch_latency: t.frontend.fetch_latency,
        pc_resteers: t.frontend.pc_resteers,
        mem_bound: t.backend.mem_bound,
        core_bound: t.backend.core_bound,
        itlb_bound: report.tlb.itlb_bound,
        dtlb_bound: report.tlb.dtlb_bound,
    }
}

/// Every hardware counter of a report, in [`EventId::ALL`] order.
fn summarize_counters(report: &PerfReport) -> Vec<(String, u64)> {
    EventId::ALL
        .into_iter()
        .map(|e| (e.name().to_string(), report.hw_counts.get(e)))
        .collect()
}

/// One core's slice of a multi-core (SoC) cell.
#[derive(Clone, PartialEq, Debug)]
pub struct CoreCellResult {
    /// The core model's name (`rocket`, `medium-boom`, …).
    pub core_name: String,
    /// The workload this core ran (each core derives its own seed).
    pub workload: String,
    /// Cycles until this core retired its workload.
    pub cycles: u64,
    /// Retired instructions on this core.
    pub instret: u64,
    /// Instructions per cycle on this core.
    pub ipc: f64,
    /// This core's TMA classification — where shared-L2 interference
    /// shows up, as growth in the victim core's Mem-Bound slots.
    pub tma: TmaSummary,
    /// This core's hardware counters, in [`EventId::ALL`] order.
    pub counters: Vec<(String, u64)>,
}

impl CoreCellResult {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("core", Json::Str(self.core_name.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("cycles", Json::Int(self.cycles)),
            ("instret", Json::Int(self.instret)),
            ("ipc", Json::Num(self.ipc)),
            (
                "tma",
                Json::Object(
                    TmaSummary::FIELDS
                        .iter()
                        .zip(self.tma.values())
                        .map(|(k, v)| ((*k).to_string(), Json::Num(v)))
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(node: &Json) -> Result<CoreCellResult, String> {
        let str_field = |key: &str| -> Result<String, String> {
            node.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("core entry: missing string field `{key}`"))
        };
        let int_field = |key: &str| -> Result<u64, String> {
            node.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("core entry: missing integer field `{key}`"))
        };
        let tma_node = node.get("tma").ok_or("core entry: missing `tma` object")?;
        let mut values = [0.0f64; 12];
        for (slot, key) in values.iter_mut().zip(TmaSummary::FIELDS) {
            *slot = tma_node
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("core entry: missing tma field `{key}`"))?;
        }
        let counters = match node.get("counters") {
            Some(Json::Object(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("core entry: counter `{k}` is not an integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("core entry: missing `counters` object".into()),
        };
        Ok(CoreCellResult {
            core_name: str_field("core")?,
            workload: str_field("workload")?,
            cycles: int_field("cycles")?,
            instret: int_field("instret")?,
            ipc: node
                .get("ipc")
                .and_then(Json::as_f64)
                .ok_or("core entry: missing `ipc`")?,
            tma: TmaSummary::from_values(values),
            counters,
        })
    }
}

/// One completed grid cell.
#[derive(Clone, PartialEq, Debug)]
pub struct CellResult {
    /// The cell's coordinates in the grid.
    pub cell: CellSpec,
    /// Total cycles of the run.
    pub cycles: u64,
    /// Retired instructions.
    pub instret: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// The TMA classification (hardware-counter view).
    pub tma: TmaSummary,
    /// Every hardware counter, in [`EventId::ALL`] order.
    pub counters: Vec<(String, u64)>,
    /// Per-core results of a multi-core (SoC) cell, in core order;
    /// empty for single-core cells. When non-empty, the top-level
    /// fields mirror core 0 so single-core consumers keep working.
    pub cores: Vec<CoreCellResult>,
    /// Whether this result was served from the cache (not serialized —
    /// a cached result must compare equal to its cold-run twin).
    pub from_cache: bool,
}

impl CellResult {
    /// Distills a perf report into the durable cell record.
    pub fn from_report(cell: CellSpec, report: &PerfReport) -> CellResult {
        CellResult {
            cell,
            cycles: report.cycles,
            instret: report.instret,
            ipc: report.ipc(),
            tma: summarize_tma(report),
            counters: summarize_counters(report),
            cores: Vec::new(),
            from_cache: false,
        }
    }

    /// Distills a multi-core SoC run (one report per core) into the
    /// durable cell record: core 0 fills the top-level fields, every
    /// core gets an entry in [`CellResult::cores`].
    pub fn from_soc_reports(cell: CellSpec, reports: &[icicle_soc::SocReport]) -> CellResult {
        assert!(!reports.is_empty(), "soc cell produced no reports");
        let first = &reports[0].report;
        CellResult {
            cell,
            cycles: first.cycles,
            instret: first.instret,
            ipc: first.ipc(),
            tma: summarize_tma(first),
            counters: summarize_counters(first),
            cores: reports
                .iter()
                .map(|r| CoreCellResult {
                    core_name: r.report.core_name.clone(),
                    workload: r.workload.clone(),
                    cycles: r.report.cycles,
                    instret: r.report.instret,
                    ipc: r.report.ipc(),
                    tma: summarize_tma(&r.report),
                    counters: summarize_counters(&r.report),
                })
                .collect(),
            from_cache: false,
        }
    }

    /// The canonical JSON node for this cell.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("workload", Json::Str(self.cell.workload.clone())),
            ("core", Json::Str(self.cell.core.name())),
            ("arch", Json::Str(self.cell.arch.name().to_string())),
            ("seed", Json::Int(self.cell.seed)),
            ("repeat", Json::Int(u64::from(self.cell.repeat))),
            ("max_cycles", Json::Int(self.cell.max_cycles)),
            ("cycles", Json::Int(self.cycles)),
            ("instret", Json::Int(self.instret)),
            ("ipc", Json::Num(self.ipc)),
            (
                "tma",
                Json::Object(
                    TmaSummary::FIELDS
                        .iter()
                        .zip(self.tma.values())
                        .map(|(k, v)| ((*k).to_string(), Json::Num(v)))
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
        ];
        // Single-core cells stay byte-identical to the old format; the
        // per-core array appears only for SoC cells.
        if !self.cores.is_empty() {
            pairs.push((
                "cores",
                Json::Array(self.cores.iter().map(CoreCellResult::to_json).collect()),
            ));
        }
        Json::object(pairs)
    }

    /// Reconstructs a cell record from [`CellResult::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(node: &Json) -> Result<CellResult, String> {
        let str_field = |key: &str| -> Result<String, String> {
            node.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let int_field = |key: &str| -> Result<u64, String> {
            node.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };
        let core_name = str_field("core")?;
        let arch_name = str_field("arch")?;
        let cell = CellSpec {
            workload: str_field("workload")?,
            core: CoreSelect::from_name(&core_name)
                .ok_or_else(|| format!("unknown core `{core_name}`"))?,
            arch: CounterArch::from_name(&arch_name)
                .ok_or_else(|| format!("unknown arch `{arch_name}`"))?,
            seed: int_field("seed")?,
            repeat: int_field("repeat")? as u32,
            max_cycles: int_field("max_cycles")?,
        };
        let tma_node = node.get("tma").ok_or("missing `tma` object")?;
        let mut values = [0.0f64; 12];
        for (slot, key) in values.iter_mut().zip(TmaSummary::FIELDS) {
            *slot = tma_node
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing tma field `{key}`"))?;
        }
        let counters = match node.get("counters") {
            Some(Json::Object(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("counter `{k}` is not an integer"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `counters` object".into()),
        };
        // Absent for single-core cells (and in every pre-SoC cache
        // entry), so absence means "no per-core breakdown".
        let cores = match node.get("cores") {
            Some(Json::Array(entries)) => entries
                .iter()
                .map(CoreCellResult::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("`cores` is not an array".into()),
            None => Vec::new(),
        };
        Ok(CellResult {
            cell,
            cycles: int_field("cycles")?,
            instret: int_field("instret")?,
            ipc: node
                .get("ipc")
                .and_then(Json::as_f64)
                .ok_or("missing `ipc`")?,
            tma: TmaSummary::from_values(values),
            counters,
            cores,
            from_cache: false,
        })
    }
}

/// One failed grid cell, with its typed failure class and the number
/// of supervised attempts the runner spent on it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellFailure {
    /// The cell's grid label.
    pub label: String,
    /// The stable machine-readable class ([`crate::CellError::kind`]):
    /// `unknown-workload`, `execution`, `measurement`, `timeout`,
    /// `panic`.
    pub kind: String,
    /// The human-readable cause.
    pub error: String,
    /// Supervised attempts made (> 1 means retries were granted).
    pub attempts: u32,
}

/// A fault the runner absorbed without losing the cell: a retried
/// attempt, a quarantined cache entry, a recovered lock. Incidents are
/// collected per cell, so the list is deterministic at any `--jobs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Incident {
    /// The grid label of the affected cell.
    pub label: String,
    /// The incident class (`retry`, `corrupt-cache-entry`,
    /// `truncated-report`, `poisoned-lock`, `resume-cache-miss`).
    pub kind: String,
    /// What happened and how it was absorbed.
    pub detail: String,
}

/// How the cells of a finished campaign were produced.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Cells actually simulated in this run.
    pub simulated: usize,
    /// Cells served from the result cache.
    pub cached: usize,
    /// Cells a checkpoint proved complete in an earlier run.
    pub resumed: usize,
    /// Cells that failed (unknown workload, measurement error, panic,
    /// timeout).
    pub failed: usize,
    /// Cells cancelled by fail-fast before they ran.
    pub skipped: usize,
}

impl RunStats {
    /// Total cells accounted for.
    pub fn total(&self) -> usize {
        self.simulated + self.cached + self.resumed + self.failed + self.skipped
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells: {} simulated, {} cached, {} failed",
            self.total(),
            self.simulated,
            self.cached,
            self.failed
        )?;
        if self.resumed > 0 {
            write!(f, ", {} resumed", self.resumed)?;
        }
        if self.skipped > 0 {
            write!(f, ", {} skipped", self.skipped)?;
        }
        Ok(())
    }
}

/// The aggregate outcome of one campaign run.
#[derive(Clone, PartialEq, Debug)]
pub struct CampaignReport {
    /// The campaign's name (from the spec).
    pub name: String,
    /// Completed cells in canonical grid order.
    pub cells: Vec<CellResult>,
    /// Failed cells with typed causes, in grid order.
    pub failures: Vec<CellFailure>,
    /// Cells cancelled by fail-fast before they ran (labels, grid
    /// order).
    pub skipped: Vec<String>,
    /// Faults absorbed without losing a cell, in grid order.
    pub incidents: Vec<Incident>,
    /// Provenance counters for this run (not serialized: a warm re-run
    /// must emit byte-identical JSON/CSV to its cold twin).
    pub stats: RunStats,
}

impl CampaignReport {
    /// Whether every cell completed: no failures and no fail-fast
    /// skips. (Recovered incidents do not fail a campaign.)
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.skipped.is_empty()
    }

    /// The canonical JSON document (stable across thread counts and
    /// cache states).
    pub fn to_json(&self) -> String {
        let mut doc = vec![
            ("campaign".to_string(), Json::Str(self.name.clone())),
            (
                "cells".to_string(),
                Json::Array(self.cells.iter().map(CellResult::to_json).collect()),
            ),
        ];
        if !self.failures.is_empty() {
            doc.push((
                "failures".to_string(),
                Json::Array(
                    self.failures
                        .iter()
                        .map(|f| {
                            Json::object(vec![
                                ("cell", Json::Str(f.label.clone())),
                                ("kind", Json::Str(f.kind.clone())),
                                ("error", Json::Str(f.error.clone())),
                                ("attempts", Json::Int(u64::from(f.attempts))),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.skipped.is_empty() {
            doc.push((
                "skipped".to_string(),
                Json::Array(
                    self.skipped
                        .iter()
                        .map(|label| Json::Str(label.clone()))
                        .collect(),
                ),
            ));
        }
        if !self.incidents.is_empty() {
            doc.push((
                "incidents".to_string(),
                Json::Array(
                    self.incidents
                        .iter()
                        .map(|i| {
                            Json::object(vec![
                                ("cell", Json::Str(i.label.clone())),
                                ("kind", Json::Str(i.kind.clone())),
                                ("detail", Json::Str(i.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        let mut text = Json::Object(doc).render();
        text.push('\n');
        text
    }

    /// The canonical CSV table: one row per cell, fixed column order.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("workload,core,arch,seed,repeat,cycles,instret,ipc");
        for field in TmaSummary::FIELDS {
            out.push(',');
            out.push_str(field);
        }
        out.push('\n');
        for cell in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.6}",
                cell.cell.workload,
                cell.cell.core.name(),
                cell.cell.arch.name(),
                cell.cell.seed,
                cell.cell.repeat,
                cell.cycles,
                cell.instret,
                cell.ipc
            ));
            for v in cell.tma.values() {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// Mean IPC per workload (over cores, archs, seeds, repeats) — the
    /// quick aggregate the CLI summary table prints.
    pub fn mean_ipc_by_workload(&self) -> Vec<(String, f64)> {
        let mut acc: Vec<(String, f64, usize)> = Vec::new();
        for cell in &self.cells {
            match acc.iter_mut().find(|(w, _, _)| *w == cell.cell.workload) {
                Some((_, sum, n)) => {
                    *sum += cell.ipc;
                    *n += 1;
                }
                None => acc.push((cell.cell.workload.clone(), cell.ipc, 1)),
            }
        }
        acc.into_iter()
            .map(|(w, sum, n)| (w, sum / n as f64))
            .collect()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "campaign `{}` — {}", self.name, self.stats)?;
        writeln!(
            f,
            "{:<18} {:<12} {:<12} {:>4} {:>3} {:>10} {:>6} {:>8} {:>8} {:>8} {:>8}",
            "workload",
            "core",
            "arch",
            "seed",
            "rep",
            "cycles",
            "ipc",
            "retire",
            "badspec",
            "frontend",
            "backend"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<18} {:<12} {:<12} {:>4} {:>3} {:>10} {:>6.2} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%{}",
                c.cell.workload,
                c.cell.core.name(),
                c.cell.arch.name(),
                c.cell.seed,
                c.cell.repeat,
                c.cycles,
                c.ipc,
                100.0 * c.tma.retiring,
                100.0 * c.tma.bad_speculation,
                100.0 * c.tma.frontend,
                100.0 * c.tma.backend,
                if c.from_cache { "  (cached)" } else { "" },
            )?;
        }
        for failure in &self.failures {
            writeln!(
                f,
                "FAILED {} [{}, {} attempt{}]: {}",
                failure.label,
                failure.kind,
                failure.attempts,
                if failure.attempts == 1 { "" } else { "s" },
                failure.error
            )?;
        }
        for label in &self.skipped {
            writeln!(f, "SKIPPED {label} (fail-fast)")?;
        }
        for incident in &self.incidents {
            writeln!(
                f,
                "RECOVERED {} [{}]: {}",
                incident.label, incident.kind, incident.detail
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CoreSelect;

    fn sample_cell(workload: &str, seed: u64) -> CellResult {
        CellResult {
            cell: CellSpec {
                workload: workload.into(),
                core: CoreSelect::Rocket,
                arch: CounterArch::AddWires,
                seed,
                repeat: 0,
                max_cycles: 1_000_000,
            },
            cycles: 1000,
            instret: 800,
            ipc: 0.8,
            tma: TmaSummary {
                retiring: 0.8,
                bad_speculation: 0.05,
                frontend: 0.1,
                backend: 0.05,
                ..TmaSummary::default()
            },
            counters: vec![("cycles".into(), 1000), ("instret".into(), 800)],
            cores: Vec::new(),
            from_cache: false,
        }
    }

    #[test]
    fn cell_json_round_trips() {
        let cell = sample_cell("qsort", 3);
        let back = CellResult::from_json(&cell.to_json()).unwrap();
        assert_eq!(back, cell);
    }

    #[test]
    fn from_json_names_the_missing_field() {
        let mut node = sample_cell("qsort", 0).to_json();
        if let Json::Object(pairs) = &mut node {
            pairs.retain(|(k, _)| k != "instret");
        }
        let err = CellResult::from_json(&node).unwrap_err();
        assert!(err.contains("instret"), "{err}");
    }

    #[test]
    fn report_emitters_are_deterministic_and_cache_blind() {
        let mut report = CampaignReport {
            name: "t".into(),
            cells: vec![sample_cell("qsort", 0), sample_cell("rsort", 1)],
            failures: vec![CellFailure {
                label: "bogus/rocket/stock/s0/r0".into(),
                kind: "unknown-workload".into(),
                error: "unknown workload".into(),
                attempts: 1,
            }],
            skipped: Vec::new(),
            incidents: Vec::new(),
            stats: RunStats {
                simulated: 2,
                cached: 0,
                failed: 1,
                ..RunStats::default()
            },
        };
        let cold_json = report.to_json();
        let cold_csv = report.to_csv();
        // Mark everything cached (a warm run) — emitters must not change.
        for c in &mut report.cells {
            c.from_cache = true;
        }
        report.stats = RunStats {
            simulated: 0,
            cached: 2,
            failed: 1,
            ..RunStats::default()
        };
        assert_eq!(report.to_json(), cold_json);
        assert_eq!(report.to_csv(), cold_csv);
        // CSV has a header plus one row per cell.
        assert_eq!(cold_csv.lines().count(), 3);
        // Display mentions provenance.
        assert!(report.to_string().contains("(cached)"));
        assert!(report.to_string().contains("FAILED"));
    }

    #[test]
    fn mean_ipc_groups_by_workload() {
        let mut a = sample_cell("qsort", 0);
        a.ipc = 1.0;
        let mut b = sample_cell("qsort", 1);
        b.ipc = 2.0;
        let report = CampaignReport {
            name: "t".into(),
            cells: vec![a, b],
            failures: Vec::new(),
            skipped: Vec::new(),
            incidents: Vec::new(),
            stats: RunStats::default(),
        };
        assert_eq!(
            report.mean_ipc_by_workload(),
            vec![("qsort".to_string(), 1.5)]
        );
    }
}
