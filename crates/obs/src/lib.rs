//! # icicle-obs
//!
//! The observability layer of the Icicle reproduction: structured
//! tracing, a metrics registry, and Perfetto timeline export — all
//! **zero-cost when disabled**, because a 135-cell campaign must not pay
//! for introspection it did not ask for.
//!
//! Three pillars:
//!
//! * [`collector`] — `Span`/`Event` records with monotonic ids, parent
//!   links, and key=value fields, routed through a pluggable
//!   [`Collector`] (no-op by default, in-memory ring buffer for tests
//!   and wall-clock export, JSONL writer selected by `ICICLE_LOG` or
//!   `--log-level`). Every emit site is guarded by a relaxed atomic
//!   load, so the disabled path is a load-and-branch.
//! * [`metrics`] — named counters, gauges, and fixed-bucket histograms
//!   behind atomics; [`MetricsRegistry::snapshot`] serializes in the
//!   same canonical-JSON style as the bench ledger, so snapshots are
//!   byte-identical across thread counts when the recorded quantities
//!   are deterministic.
//! * [`perfetto`] — Chrome `trace_events` JSON on two clock domains:
//!   simulated cycles (the paper's temporal TMA rendered as a per-lane
//!   timeline, built on `icicle-trace`) and wall-clock harness spans
//!   (campaign cells, cache hits, retries, checkpoint writes).
//!
//! The crate also hosts [`json`], the workspace's canonical JSON value;
//! it moved here from `icicle-campaign` so the observability layer can
//! sit below every harness crate (campaign re-exports it, existing
//! paths keep working).
//!
//! ```
//! use std::sync::Arc;
//! use icicle_obs as obs;
//!
//! let ring = Arc::new(obs::RingCollector::new(64));
//! obs::install(obs::Level::Debug, ring.clone());
//! {
//!     let _span = obs::span_with(obs::Level::Info, "cell", || {
//!         vec![("workload", "vvadd".into())]
//!     });
//!     obs::event(obs::Level::Debug, "cache.miss");
//! }
//! obs::shutdown();
//! assert_eq!(ring.records().len(), 3); // start, event, end
//! ```

pub mod collector;
pub mod engine;
pub mod flight;
pub mod fsutil;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod sim;
pub mod trace;

pub use collector::{
    enabled, event, event_with, init_from_env, init_from_spec, install, shutdown, span, span_with,
    Collector, Field, FieldValue, JsonlCollector, Level, NoopCollector, Record, RecordKind,
    RingCollector, SpanGuard, LOG_ENV,
};
pub use engine::{
    engine_stats, record_l2_core, record_skip, skip_span_bucket, EngineCounts, ENGINE_CORES,
    SKIP_SPAN_BOUNDS,
};
pub use flight::{
    arm_flight_recorder, disarm_flight_recorder, flight_armed, flight_dropped, flight_records,
    write_postmortem, DEFAULT_FLIGHT_CAPACITY, POSTMORTEM_SCHEMA,
};
pub use fsutil::write_atomic;
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, METRICS_SCHEMA};
pub use perfetto::{cycle_timeline, trace_events_document, wall_timeline, PERFETTO_SCHEMA};
pub use sim::{set_sim_stats, sim_enabled, sim_stats, SimCounts, SimStats};
pub use trace::{current, enter, handoff, TraceContext, TraceId, TraceScope};
