//! TLB-aware third-level TMA — the extension §IV-A's *Limitations*
//! paragraph defers to future work.
//!
//! The paper's model stops at the second level and explicitly does "not
//! yet consider the impact of TLB behavior". The TLB events already
//! exist on both cores (`ITLB-miss`, `DTLB-miss`, `L2-TLB-miss`,
//! Table I), so this module drills one level further:
//!
//! * **Fetch Latency** splits into *I-cache bound* and *ITLB bound*;
//! * **Mem Bound** splits into *D-cache bound* and *DTLB bound*.
//!
//! Without per-miss latency attribution (which would violate DP 2), the
//! split uses the same fixed-cost style as the recovery-length constant
//! `M_rl`: each first-level TLB miss is charged the L2-TLB latency and
//! each second-level miss the page-walk latency, clamped so a child
//! never exceeds its parent class.

use crate::breakdown::TmaBreakdown;

/// Fixed per-miss costs used to attribute slots to TLB behaviour.
///
/// Defaults match `icicle_mem::HierarchyConfig::default()` (8-cycle
/// shared-TLB hit, 60-cycle walk).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TlbCosts {
    /// Cycles charged per first-level TLB miss that hits the shared TLB.
    pub l2_tlb_latency: u64,
    /// Cycles charged per shared-TLB miss (a page walk).
    pub walk_latency: u64,
}

impl Default for TlbCosts {
    fn default() -> TlbCosts {
        TlbCosts {
            l2_tlb_latency: 8,
            walk_latency: 60,
        }
    }
}

/// TLB miss counts feeding the third-level split.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TlbInput {
    /// `ITLB-miss` count.
    pub itlb_misses: u64,
    /// `DTLB-miss` count.
    pub dtlb_misses: u64,
    /// `L2-TLB-miss` count (shared between both sides; attributed
    /// proportionally to the first-level miss counts).
    pub l2_tlb_misses: u64,
}

/// The third-level classes this extension adds (slot fractions).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct TlbLevel {
    /// Fetch-latency slots attributable to ITLB misses.
    pub itlb_bound: f64,
    /// Fetch-latency slots attributable to the I-cache itself.
    pub icache_bound: f64,
    /// Mem-bound slots attributable to DTLB misses.
    pub dtlb_bound: f64,
    /// Mem-bound slots attributable to the D-cache itself.
    pub dcache_bound: f64,
}

impl TlbLevel {
    /// Drills the second-level classes of `tma` down using TLB miss
    /// counts.
    ///
    /// `cycles` and `commit_width` must match the run that produced
    /// `tma`.
    pub fn analyze(
        tma: &TmaBreakdown,
        input: &TlbInput,
        costs: &TlbCosts,
        cycles: u64,
        commit_width: usize,
    ) -> TlbLevel {
        let m_total = (cycles as f64 * commit_width as f64).max(1.0);
        // Split the shared-TLB misses between the two sides by their
        // first-level miss counts.
        let first_level_total = (input.itlb_misses + input.dtlb_misses).max(1);
        let i_share = input.itlb_misses as f64 / first_level_total as f64;
        let walk = costs.walk_latency as f64 * input.l2_tlb_misses as f64;
        let itlb_cycles = costs.l2_tlb_latency as f64 * input.itlb_misses as f64 + walk * i_share;
        let dtlb_cycles =
            costs.l2_tlb_latency as f64 * input.dtlb_misses as f64 + walk * (1.0 - i_share);

        let itlb_bound =
            (itlb_cycles * commit_width as f64 / m_total).min(tma.frontend.fetch_latency);
        let dtlb_bound = (dtlb_cycles * commit_width as f64 / m_total).min(tma.backend.mem_bound);
        TlbLevel {
            itlb_bound,
            icache_bound: (tma.frontend.fetch_latency - itlb_bound).max(0.0),
            dtlb_bound,
            dcache_bound: (tma.backend.mem_bound - dtlb_bound).max(0.0),
        }
    }

    /// Whether the split is internally consistent with its parents.
    pub fn is_consistent(&self, tma: &TmaBreakdown, tolerance: f64) -> bool {
        (self.itlb_bound + self.icache_bound - tma.frontend.fetch_latency).abs() < tolerance
            && (self.dtlb_bound + self.dcache_bound - tma.backend.mem_bound).abs() < tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TmaInput, TmaModel};

    fn base_breakdown() -> TmaBreakdown {
        TmaModel::boom(3).analyze(&TmaInput {
            cycles: 10_000,
            uops_issued: 12_000,
            uops_retired: 12_000,
            fetch_bubbles: 6_000,
            icache_blocked: 1_500, // 4500 slots of fetch latency
            dcache_blocked: 9_000,
            ..TmaInput::default()
        })
    }

    #[test]
    fn no_tlb_misses_attributes_everything_to_caches() {
        let tma = base_breakdown();
        let level = TlbLevel::analyze(&tma, &TlbInput::default(), &TlbCosts::default(), 10_000, 3);
        assert_eq!(level.itlb_bound, 0.0);
        assert_eq!(level.dtlb_bound, 0.0);
        assert!((level.icache_bound - tma.frontend.fetch_latency).abs() < 1e-12);
        assert!((level.dcache_bound - tma.backend.mem_bound).abs() < 1e-12);
        assert!(level.is_consistent(&tma, 1e-9));
    }

    #[test]
    fn tlb_misses_shift_the_split() {
        let tma = base_breakdown();
        let input = TlbInput {
            itlb_misses: 50,
            dtlb_misses: 150,
            l2_tlb_misses: 40,
        };
        let level = TlbLevel::analyze(&tma, &input, &TlbCosts::default(), 10_000, 3);
        assert!(level.itlb_bound > 0.0);
        assert!(
            level.dtlb_bound > level.itlb_bound,
            "D side saw 3x the misses"
        );
        assert!(level.is_consistent(&tma, 1e-9));
    }

    #[test]
    fn children_never_exceed_parents() {
        let tma = base_breakdown();
        // Absurdly many misses: clamped to the parent class.
        let input = TlbInput {
            itlb_misses: 1_000_000,
            dtlb_misses: 1_000_000,
            l2_tlb_misses: 1_000_000,
        };
        let level = TlbLevel::analyze(&tma, &input, &TlbCosts::default(), 10_000, 3);
        assert!((level.itlb_bound - tma.frontend.fetch_latency).abs() < 1e-12);
        assert!(level.icache_bound.abs() < 1e-12);
        assert!((level.dtlb_bound - tma.backend.mem_bound).abs() < 1e-12);
        assert!(level.is_consistent(&tma, 1e-9));
    }
}
