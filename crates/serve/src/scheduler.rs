//! Admission control and dispatch order.
//!
//! The scheduler layers the service's policy on top of the campaign
//! crate's [`JobQueue`] (which contributes the blocking pop and the
//! three FIFO priority bands):
//!
//! * **priorities** — `high` jobs dispatch before `normal` before
//!   `low`, FIFO within a band;
//! * **per-client quotas** — each client identity may have at most
//!   `per_client` jobs outstanding (queued + running);
//! * **backpressure** — the server as a whole admits at most
//!   `capacity` outstanding jobs.
//!
//! Both rejections are *load shedding*, not errors: the HTTP layer
//! turns them into `429 Too Many Requests` and the client retries
//! later. Quota is charged at submit and refunded when the job reaches
//! a terminal state (including cancellation), so a client that fills
//! its quota and cancels everything is immediately whole again.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use icicle_campaign::sync::lock_unpoisoned;
use icicle_campaign::{JobQueue, Priority};
use icicle_obs::MetricsRegistry;

/// Bounds (µs) for the per-band queue-wait histograms: 100 µs to 1 s.
const QUEUE_WAIT_BOUNDS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Admission-control limits.
#[derive(Copy, Clone, Debug)]
pub struct SchedulerConfig {
    /// Maximum outstanding (queued + running) jobs server-wide.
    pub capacity: usize,
    /// Maximum outstanding jobs per client identity.
    pub per_client: usize,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            capacity: 64,
            per_client: 8,
        }
    }
}

/// Why a submission was shed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The server-wide outstanding-job limit is reached.
    AtCapacity,
    /// This client's outstanding-job quota is exhausted.
    QuotaExceeded,
    /// The server is draining for shutdown and admits nothing new.
    Draining,
}

impl SubmitError {
    /// The human-readable rejection served in the error body.
    pub fn message(self) -> &'static str {
        match self {
            SubmitError::AtCapacity => "server at capacity; retry later",
            SubmitError::QuotaExceeded => "client quota exceeded; wait for submitted jobs",
            SubmitError::Draining => "server is draining; resubmit after restart",
        }
    }

    /// The HTTP status the rejection is served with: backpressure is
    /// 429 (retry the same server later), draining is 503 (this server
    /// is going away).
    pub fn status(self) -> u16 {
        match self {
            SubmitError::AtCapacity | SubmitError::QuotaExceeded => 429,
            SubmitError::Draining => 503,
        }
    }
}

#[derive(Debug, Default)]
struct Accounting {
    outstanding: usize,
    per_client: HashMap<String, usize>,
    closed: bool,
}

/// Priority dispatch with quota accounting.
pub struct Scheduler {
    config: SchedulerConfig,
    queue: JobQueue,
    accounting: Mutex<Accounting>,
    /// Enqueue instants per queued job id, for queue-age telemetry.
    pending: Mutex<HashMap<usize, (Priority, Instant)>>,
    /// Where queue depth/age telemetry lands; `None` disables it. The
    /// instruments are registered volatile so canonical result
    /// snapshots stay jobs-invariant.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Scheduler {
    /// An empty scheduler with `config` limits.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        Scheduler {
            config,
            queue: JobQueue::new(),
            accounting: Mutex::new(Accounting::default()),
            pending: Mutex::new(HashMap::new()),
            metrics: None,
        }
    }

    /// An empty scheduler that records per-band queue depth gauges and
    /// queue-wait histograms into `metrics` (as volatile instruments).
    pub fn with_metrics(config: SchedulerConfig, metrics: Arc<MetricsRegistry>) -> Scheduler {
        let mut scheduler = Scheduler::new(config);
        scheduler.metrics = Some(metrics);
        scheduler
    }

    /// Recomputes the per-band depth gauges from the pending map.
    fn update_depth_gauges(&self) {
        let Some(metrics) = self.metrics.as_deref() else {
            return;
        };
        let pending = lock_unpoisoned(&self.pending);
        for band in [Priority::High, Priority::Normal, Priority::Low] {
            let depth = pending.values().filter(|(p, _)| *p == band).count();
            metrics
                .gauge_volatile(&format!("server.queue.{}.depth", band.name()))
                .set(depth as f64);
        }
    }

    /// Admits job `id` for `client` at `priority`, or sheds it.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when a limit is reached; nothing is enqueued.
    pub fn submit(&self, id: usize, priority: Priority, client: &str) -> Result<(), SubmitError> {
        let mut accounting = lock_unpoisoned(&self.accounting);
        if accounting.closed {
            return Err(SubmitError::Draining);
        }
        if accounting.outstanding >= self.config.capacity {
            return Err(SubmitError::AtCapacity);
        }
        let client_count = accounting.per_client.entry(client.to_string()).or_insert(0);
        if *client_count >= self.config.per_client {
            return Err(SubmitError::QuotaExceeded);
        }
        *client_count += 1;
        accounting.outstanding += 1;
        drop(accounting);
        lock_unpoisoned(&self.pending).insert(id, (priority, Instant::now()));
        self.queue.push_with_priority(id, priority);
        self.update_depth_gauges();
        Ok(())
    }

    /// Blocks for the next job id to execute; `None` after
    /// [`Scheduler::close`] once the queue drains.
    pub fn next(&self) -> Option<usize> {
        let id = self.queue.pop()?;
        if let Some((priority, queued_at)) = lock_unpoisoned(&self.pending).remove(&id) {
            if let Some(metrics) = self.metrics.as_deref() {
                metrics
                    .histogram_volatile(
                        &format!("server.queue.{}.wait_us", priority.name()),
                        &QUEUE_WAIT_BOUNDS_US,
                    )
                    .observe(queued_at.elapsed().as_micros() as u64);
            }
        }
        self.update_depth_gauges();
        Some(id)
    }

    /// Refunds `client`'s quota slot when its job reaches a terminal
    /// state.
    pub fn settle(&self, client: &str) {
        let mut accounting = lock_unpoisoned(&self.accounting);
        accounting.outstanding = accounting.outstanding.saturating_sub(1);
        if let Some(count) = accounting.per_client.get_mut(client) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                accounting.per_client.remove(client);
            }
        }
    }

    /// Outstanding (queued + running) jobs.
    pub fn outstanding(&self) -> usize {
        lock_unpoisoned(&self.accounting).outstanding
    }

    /// Stops dispatch: new submissions shed with
    /// [`SubmitError::Draining`], executors drain what is queued, then
    /// exit.
    pub fn close(&self) {
        lock_unpoisoned(&self.accounting).closed = true;
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scheduler {
        Scheduler::new(SchedulerConfig {
            capacity: 3,
            per_client: 2,
        })
    }

    #[test]
    fn dispatches_in_priority_order() {
        let s = Scheduler::new(SchedulerConfig::default());
        s.submit(0, Priority::Low, "a").unwrap();
        s.submit(1, Priority::Normal, "a").unwrap();
        s.submit(2, Priority::High, "b").unwrap();
        s.close();
        let order: Vec<_> = std::iter::from_fn(|| s.next()).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn per_client_quota_sheds_then_refunds() {
        let s = small();
        s.submit(0, Priority::Normal, "a").unwrap();
        s.submit(1, Priority::Normal, "a").unwrap();
        assert_eq!(
            s.submit(2, Priority::Normal, "a"),
            Err(SubmitError::QuotaExceeded)
        );
        // Another client is unaffected by a's quota.
        s.submit(2, Priority::Normal, "b").unwrap();
        // Settling refunds the slot.
        s.settle("a");
        s.submit(3, Priority::Normal, "a").unwrap();
        assert_eq!(s.outstanding(), 3);
    }

    #[test]
    fn capacity_sheds_across_clients() {
        let s = small();
        s.submit(0, Priority::Normal, "a").unwrap();
        s.submit(1, Priority::Normal, "b").unwrap();
        s.submit(2, Priority::Normal, "c").unwrap();
        assert_eq!(
            s.submit(3, Priority::Normal, "d"),
            Err(SubmitError::AtCapacity)
        );
        s.settle("b");
        s.submit(3, Priority::Normal, "d").unwrap();
    }

    #[test]
    fn a_closed_scheduler_sheds_with_draining() {
        let s = small();
        s.submit(0, Priority::Normal, "a").unwrap();
        s.close();
        assert_eq!(
            s.submit(1, Priority::Normal, "b"),
            Err(SubmitError::Draining)
        );
        assert_eq!(SubmitError::Draining.status(), 503);
        assert_eq!(SubmitError::AtCapacity.status(), 429);
        // Already-queued work still drains.
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn queue_telemetry_tracks_depth_and_wait() {
        let metrics = Arc::new(MetricsRegistry::new());
        let s = Scheduler::with_metrics(SchedulerConfig::default(), Arc::clone(&metrics));
        s.submit(0, Priority::High, "a").unwrap();
        s.submit(1, Priority::Normal, "a").unwrap();
        assert_eq!(metrics.gauge_volatile("server.queue.high.depth").get(), 1.0);
        assert_eq!(
            metrics.gauge_volatile("server.queue.normal.depth").get(),
            1.0
        );
        assert_eq!(s.next(), Some(0));
        assert_eq!(metrics.gauge_volatile("server.queue.high.depth").get(), 0.0);
        assert_eq!(
            metrics
                .histogram_volatile("server.queue.high.wait_us", &QUEUE_WAIT_BOUNDS_US)
                .count(),
            1
        );
        // Volatile: queue telemetry never enters the canonical snapshot.
        assert!(!metrics.render().contains("server.queue."));
    }

    #[test]
    fn a_shed_submission_enqueues_nothing() {
        let s = small();
        s.submit(0, Priority::Normal, "a").unwrap();
        s.submit(1, Priority::Normal, "a").unwrap();
        let _ = s.submit(2, Priority::Normal, "a");
        s.close();
        let order: Vec<_> = std::iter::from_fn(|| s.next()).collect();
        assert_eq!(order, vec![0, 1], "the rejected job never dispatches");
    }
}
