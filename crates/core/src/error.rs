//! The facade-level error type.
//!
//! Every fallible layer of the stack has its own typed error —
//! [`IsaError`](icicle_isa::IsaError) for the execution substrate,
//! [`PmuError`](icicle_pmu::PmuError) for counter programming,
//! [`PerfError`](icicle_perf::PerfError) for the measurement harness,
//! [`SocError`](icicle_soc::SocError) for multi-core runs,
//! [`TraceError`](icicle_trace::TraceError) for the trace channel,
//! [`SpecError`](icicle_campaign::SpecError) and
//! [`CellError`](icicle_campaign::CellError) for campaigns.
//! [`IcicleError`] unifies them for callers (the CLI, scripts, tests)
//! that drive several layers and want one `?`-able type end-to-end
//! without reaching for `Box<dyn Error>`.

use std::error::Error;
use std::fmt;

use icicle_campaign::{CellError, SpecError};
use icicle_isa::IsaError;
use icicle_perf::PerfError;
use icicle_pmu::PmuError;
use icicle_soc::SocError;
use icicle_trace::TraceError;

/// Any failure the Icicle stack can report, by layer.
#[derive(Clone, Debug)]
pub enum IcicleError {
    /// Architectural execution failed.
    Isa(IsaError),
    /// Counter programming or readback failed.
    Pmu(PmuError),
    /// The perf harness failed (counter fault or watchdog).
    Perf(PerfError),
    /// A multi-core SoC run failed.
    Soc(SocError),
    /// The trace channel rejected a configuration or window.
    Trace(TraceError),
    /// A campaign spec did not parse or validate.
    Spec(SpecError),
    /// One campaign cell failed.
    Cell(CellError),
    /// Anything else (I/O, CLI usage), as a message.
    Other(String),
}

impl IcicleError {
    /// The layer that failed, as a stable lowercase name.
    pub fn layer(&self) -> &'static str {
        match self {
            IcicleError::Isa(_) => "isa",
            IcicleError::Pmu(_) => "pmu",
            IcicleError::Perf(_) => "perf",
            IcicleError::Soc(_) => "soc",
            IcicleError::Trace(_) => "trace",
            IcicleError::Spec(_) => "spec",
            IcicleError::Cell(_) => "cell",
            IcicleError::Other(_) => "other",
        }
    }
}

impl fmt::Display for IcicleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcicleError::Isa(e) => write!(f, "isa: {e}"),
            IcicleError::Pmu(e) => write!(f, "pmu: {e}"),
            IcicleError::Perf(e) => write!(f, "perf: {e}"),
            IcicleError::Soc(e) => write!(f, "soc: {e}"),
            IcicleError::Trace(e) => write!(f, "trace: {e}"),
            IcicleError::Spec(e) => write!(f, "spec: {e}"),
            IcicleError::Cell(e) => write!(f, "cell: {e}"),
            IcicleError::Other(message) => f.write_str(message),
        }
    }
}

impl Error for IcicleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IcicleError::Isa(e) => Some(e),
            IcicleError::Pmu(e) => Some(e),
            IcicleError::Perf(e) => Some(e),
            IcicleError::Soc(e) => Some(e),
            IcicleError::Trace(e) => Some(e),
            IcicleError::Spec(e) => Some(e),
            IcicleError::Cell(e) => Some(e),
            IcicleError::Other(_) => None,
        }
    }
}

macro_rules! from_layer {
    ($variant:ident, $inner:ty) => {
        impl From<$inner> for IcicleError {
            fn from(e: $inner) -> IcicleError {
                IcicleError::$variant(e)
            }
        }
    };
}

from_layer!(Isa, IsaError);
from_layer!(Pmu, PmuError);
from_layer!(Perf, PerfError);
from_layer!(Soc, SocError);
from_layer!(Trace, TraceError);
from_layer!(Spec, SpecError);
from_layer!(Cell, CellError);

impl From<String> for IcicleError {
    fn from(message: String) -> IcicleError {
        IcicleError::Other(message)
    }
}

impl From<&str> for IcicleError {
    fn from(message: &str) -> IcicleError {
        IcicleError::Other(message.to_string())
    }
}

impl From<std::io::Error> for IcicleError {
    fn from(e: std::io::Error) -> IcicleError {
        IcicleError::Other(format!("i/o: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_are_named_and_sources_chain() {
        let e = IcicleError::from(PerfError::CycleBudget {
            core: "rocket".into(),
            budget: 10,
        });
        assert_eq!(e.layer(), "perf");
        assert!(e.source().is_some());
        assert!(e.to_string().contains("10-cycle budget"));
        let o = IcicleError::from("plain message");
        assert_eq!(o.layer(), "other");
        assert!(o.source().is_none());
    }

    #[test]
    fn question_mark_converts_every_layer() {
        fn run() -> Result<(), IcicleError> {
            Err(icicle_pmu::PmuError::NotEnabled)?;
            Ok(())
        }
        assert_eq!(run().unwrap_err().layer(), "pmu");
    }
}
