//! Additional riscv-tests-style microbenchmarks (the paper's Table III
//! lists the riscv-tests suite; these cover kernels the core set in
//! [`micro`](crate::micro) does not: sparse gathers, deep recursion,
//! branchy filtering, and software multiply).

use icicle_isa::{FReg, ProgramBuilder, Reg};

use crate::rng::XorShift;
use crate::workload::Workload;

/// Sparse matrix–vector multiply (`y = A·x`, CSR format): irregular
/// gather loads through the column-index array plus FP multiply-add.
///
/// `a0` ends as the bit pattern of `sum(y)`.
///
/// # Panics
///
/// Panics if `rows` or `nnz_per_row` is zero.
pub fn spmv(rows: u64, nnz_per_row: u64) -> Workload {
    assert!(rows > 0 && nnz_per_row > 0, "degenerate matrix");
    let mut b = ProgramBuilder::new("spmv");
    let mut rng = XorShift::new(0x5eed_0030);
    let nnz = (rows * nnz_per_row) as usize;
    // CSR arrays: values (f64 bits), column indices, row pointers.
    let vals: Vec<u64> = (0..nnz)
        .map(|i| (((i % 9) as f64) * 0.125 + 0.25).to_bits())
        .collect();
    let cols: Vec<u64> = (0..nnz).map(|_| rng.below(rows)).collect();
    let ptrs: Vec<u64> = (0..=rows).map(|r| r * nnz_per_row).collect();
    let x: Vec<u64> = (0..rows)
        .map(|i| (((i % 5) as f64) * 0.5 + 1.0).to_bits())
        .collect();
    let va = b.data_u64(&vals);
    let ca = b.data_u64(&cols);
    let pa = b.data_u64(&ptrs);
    let xa = b.data_u64(&x);
    let ya = b.alloc_data(rows * 8);
    b.li(Reg::S0, va as i64);
    b.li(Reg::S1, ca as i64);
    b.li(Reg::S2, pa as i64);
    b.li(Reg::S3, xa as i64);
    b.li(Reg::S4, ya as i64);
    b.li(Reg::S5, rows as i64);
    b.li(Reg::T0, 0); // row
    b.label("row_loop");
    b.bge(Reg::T0, Reg::S5, "rows_done");
    // k = ptr[row]; end = ptr[row+1]
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S2, Reg::T1);
    b.ld(Reg::T2, Reg::T1, 0); // k
    b.ld(Reg::T3, Reg::T1, 8); // end
    b.fmv_d_x(FReg::F0, Reg::ZERO); // acc = 0.0
    b.label("nnz_loop");
    b.bge(Reg::T2, Reg::T3, "nnz_done");
    b.slli(Reg::T4, Reg::T2, 3);
    b.add(Reg::T5, Reg::S0, Reg::T4);
    b.fld(FReg::F1, Reg::T5, 0); // A value
    b.add(Reg::T5, Reg::S1, Reg::T4);
    b.ld(Reg::T6, Reg::T5, 0); // column index
    b.slli(Reg::T6, Reg::T6, 3);
    b.add(Reg::T6, Reg::S3, Reg::T6);
    b.fld(FReg::F2, Reg::T6, 0); // x[col]: the gather
    b.fmul(FReg::F3, FReg::F1, FReg::F2);
    b.fadd(FReg::F0, FReg::F0, FReg::F3);
    b.addi(Reg::T2, Reg::T2, 1);
    b.j("nnz_loop");
    b.label("nnz_done");
    b.slli(Reg::T4, Reg::T0, 3);
    b.add(Reg::T4, Reg::S4, Reg::T4);
    b.fsd(FReg::F0, Reg::T4, 0);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("row_loop");
    b.label("rows_done");
    // a0 = bits(sum y)
    b.fmv_d_x(FReg::F4, Reg::ZERO);
    b.li(Reg::T0, 0);
    b.label("sum_loop");
    b.bge(Reg::T0, Reg::S5, "sum_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S4, Reg::T1);
    b.fld(FReg::F5, Reg::T1, 0);
    b.fadd(FReg::F4, FReg::F4, FReg::F5);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("sum_loop");
    b.label("sum_done");
    b.fmv_x_d(Reg::A0, FReg::F4);
    b.halt();
    Workload::new(
        "spmv",
        b.build().expect("spmv builds"),
        30 * rows * nnz_per_row + 20 * rows + 20_000,
    )
}

/// Towers of Hanoi with true recursion (explicit stack frames, `jal` /
/// `jalr` call/return pairs): exercises deep call chains and stack
/// traffic. `a0` counts the moves (`2^disks − 1`).
///
/// # Panics
///
/// Panics if `disks` is zero or exceeds 20.
pub fn towers(disks: u64) -> Workload {
    assert!((1..=20).contains(&disks), "disk count out of range");
    let mut b = ProgramBuilder::new("towers");
    b.li(Reg::A0, 0); // move counter
    b.li(Reg::A1, disks as i64); // n
    b.call("hanoi");
    b.halt();
    // hanoi(n in a1): if n == 0 return; hanoi(n-1); count += 1; hanoi(n-1)
    b.label("hanoi");
    b.beq(Reg::A1, Reg::ZERO, "hanoi_ret");
    // Push ra and n.
    b.addi(Reg::SP, Reg::SP, -16);
    b.sd(Reg::RA, Reg::SP, 0);
    b.sd(Reg::A1, Reg::SP, 8);
    b.addi(Reg::A1, Reg::A1, -1);
    b.call("hanoi");
    // The "move": count it.
    b.addi(Reg::A0, Reg::A0, 1);
    // Second recursive call with the same n-1.
    b.ld(Reg::A1, Reg::SP, 8);
    b.addi(Reg::A1, Reg::A1, -1);
    b.call("hanoi");
    // Pop and return.
    b.ld(Reg::RA, Reg::SP, 0);
    b.ld(Reg::A1, Reg::SP, 8);
    b.addi(Reg::SP, Reg::SP, 16);
    b.label("hanoi_ret");
    b.ret();
    Workload::new(
        "towers",
        b.build().expect("towers builds"),
        40 * (1u64 << disks) + 1_000,
    )
}

/// A 3-point median filter over a pseudo-random vector: the
/// element-wise min/max network is all data-dependent branches.
///
/// `a0` ends as `sum(output)` (borders copied through).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn median(n: u64) -> Workload {
    assert!(n >= 3, "need at least three elements");
    let mut b = ProgramBuilder::new("median");
    let mut rng = XorShift::new(0x5eed_0031);
    let data: Vec<u64> = (0..n).map(|_| rng.below(1 << 12)).collect();
    let input = b.data_u64(&data);
    let output = b.alloc_data(n * 8);
    b.li(Reg::S0, input as i64);
    b.li(Reg::S1, output as i64);
    b.li(Reg::S2, n as i64);
    // Copy the borders.
    b.ld(Reg::T0, Reg::S0, 0);
    b.sd(Reg::T0, Reg::S1, 0);
    b.slli(Reg::T1, Reg::S2, 3);
    b.addi(Reg::T1, Reg::T1, -8);
    b.add(Reg::T2, Reg::S0, Reg::T1);
    b.ld(Reg::T0, Reg::T2, 0);
    b.add(Reg::T2, Reg::S1, Reg::T1);
    b.sd(Reg::T0, Reg::T2, 0);
    b.li(Reg::T0, 1); // i
    b.addi(Reg::S3, Reg::S2, -1);
    b.label("med_loop");
    b.bge(Reg::T0, Reg::S3, "med_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S0, Reg::T1);
    b.ld(Reg::T2, Reg::T1, -8); // a
    b.ld(Reg::T3, Reg::T1, 0); // b
    b.ld(Reg::T4, Reg::T1, 8); // c
                               // median(a,b,c) with branches: sort a,b then clamp with c.
    b.bgeu(Reg::T3, Reg::T2, "med_ab_ok"); // if b < a swap
    b.mv(Reg::T5, Reg::T2);
    b.mv(Reg::T2, Reg::T3);
    b.mv(Reg::T3, Reg::T5);
    b.label("med_ab_ok");
    // now a=min, b=max of the first two; median = clamp(c, a, b)
    b.bgeu(Reg::T4, Reg::T2, "med_c_ge_a");
    b.mv(Reg::T6, Reg::T2); // c < a → median = a
    b.j("med_store");
    b.label("med_c_ge_a");
    b.bgeu(Reg::T3, Reg::T4, "med_c_mid");
    b.mv(Reg::T6, Reg::T3); // c > b → median = b
    b.j("med_store");
    b.label("med_c_mid");
    b.mv(Reg::T6, Reg::T4); // a ≤ c ≤ b → median = c
    b.label("med_store");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S1, Reg::T1);
    b.sd(Reg::T6, Reg::T1, 0);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("med_loop");
    b.label("med_done");
    // a0 = sum(output)
    b.li(Reg::A0, 0);
    b.li(Reg::T0, 0);
    b.label("med_sum");
    b.bge(Reg::T0, Reg::S2, "med_sum_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T1, Reg::S1, Reg::T1);
    b.ld(Reg::T2, Reg::T1, 0);
    b.add(Reg::A0, Reg::A0, Reg::T2);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("med_sum");
    b.label("med_sum_done");
    b.halt();
    Workload::new("median", b.build().expect("median builds"), 40 * n + 10_000)
}

/// Software multiply by shift-and-add (no `mul` instruction), the
/// riscv-tests `multiply` kernel: a tight dependent-chain loop that is
/// purely Core Bound.
///
/// `a0` ends as the wrapping sum of all products.
///
/// # Panics
///
/// Panics if `pairs` is zero.
pub fn multiply(pairs: u64) -> Workload {
    assert!(pairs > 0, "need at least one pair");
    let mut b = ProgramBuilder::new("multiply");
    let mut rng = XorShift::new(0x5eed_0032);
    let xs: Vec<u64> = (0..pairs).map(|_| rng.below(1 << 16)).collect();
    let ys: Vec<u64> = (0..pairs).map(|_| rng.below(1 << 16)).collect();
    let xa = b.data_u64(&xs);
    let ya = b.data_u64(&ys);
    b.li(Reg::S0, xa as i64);
    b.li(Reg::S1, ya as i64);
    b.li(Reg::S2, pairs as i64);
    b.li(Reg::A0, 0);
    b.li(Reg::T0, 0); // pair index
    b.label("pair_loop");
    b.bge(Reg::T0, Reg::S2, "pairs_done");
    b.slli(Reg::T1, Reg::T0, 3);
    b.add(Reg::T2, Reg::S0, Reg::T1);
    b.ld(Reg::T3, Reg::T2, 0); // multiplicand
    b.add(Reg::T2, Reg::S1, Reg::T1);
    b.ld(Reg::T4, Reg::T2, 0); // multiplier
    b.li(Reg::T5, 0); // product
    b.label("bit_loop");
    b.beq(Reg::T4, Reg::ZERO, "bits_done");
    b.andi(Reg::T6, Reg::T4, 1);
    b.beq(Reg::T6, Reg::ZERO, "bit_skip");
    b.add(Reg::T5, Reg::T5, Reg::T3);
    b.label("bit_skip");
    b.slli(Reg::T3, Reg::T3, 1);
    b.srli(Reg::T4, Reg::T4, 1);
    b.j("bit_loop");
    b.label("bits_done");
    b.add(Reg::A0, Reg::A0, Reg::T5);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("pair_loop");
    b.label("pairs_done");
    b.halt();
    Workload::new(
        "multiply",
        b.build().expect("multiply builds"),
        150 * pairs + 10_000,
    )
}

/// An atomic histogram: `amoadd.d` increments pseudo-randomly chosen
/// bins, the A-extension pattern behind locks and reductions. Exercises
/// the `Atomic` event and read-modify-write timing on both cores.
///
/// `a0` ends as the sum of all bins (= `updates`).
///
/// # Panics
///
/// Panics if `bins` is not a power of two ≥ 2 or `updates` is zero.
pub fn atomic_histogram(bins: u64, updates: u64) -> Workload {
    assert!(
        bins.is_power_of_two() && bins >= 2 && updates > 0,
        "degenerate histogram"
    );
    let mut b = ProgramBuilder::new("atomic_histogram");
    let table = b.alloc_data(bins * 8);
    b.li(Reg::S0, table as i64);
    b.li(Reg::S1, 99991); // LCG state
    b.li(Reg::S2, 6364136223846793005u64 as i64);
    b.li(Reg::T0, 0);
    b.li(Reg::T1, updates as i64);
    b.li(Reg::T2, 1); // increment
    b.label("ah_loop");
    b.mul(Reg::S1, Reg::S1, Reg::S2);
    b.addi(Reg::S1, Reg::S1, 1442695040888963407u64 as i64);
    b.srli(Reg::T3, Reg::S1, 29);
    b.andi(Reg::T3, Reg::T3, (bins - 1) as i64);
    b.slli(Reg::T3, Reg::T3, 3);
    b.add(Reg::T3, Reg::S0, Reg::T3);
    b.amoadd(Reg::T4, Reg::T3, Reg::T2); // bin += 1
    b.addi(Reg::T0, Reg::T0, 1);
    b.blt(Reg::T0, Reg::T1, "ah_loop");
    // a0 = sum of bins.
    b.li(Reg::A0, 0);
    b.li(Reg::T0, 0);
    b.li(Reg::T1, bins as i64);
    b.label("ah_sum");
    b.bge(Reg::T0, Reg::T1, "ah_done");
    b.slli(Reg::T3, Reg::T0, 3);
    b.add(Reg::T3, Reg::S0, Reg::T3);
    b.ld(Reg::T4, Reg::T3, 0);
    b.add(Reg::A0, Reg::A0, Reg::T4);
    b.addi(Reg::T0, Reg::T0, 1);
    b.j("ah_sum");
    b.label("ah_done");
    b.halt();
    Workload::new(
        "atomic_histogram",
        b.build().expect("atomic_histogram builds"),
        25 * updates + 20 * bins + 10_000,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_isa::Reg;

    #[test]
    fn spmv_matches_reference() {
        let rows = 32u64;
        let nnz_per_row = 4u64;
        let s = spmv(rows, nnz_per_row).execute().unwrap();
        // Recompute with the same generators.
        let mut rng = XorShift::new(0x5eed_0030);
        let nnz = (rows * nnz_per_row) as usize;
        let vals: Vec<f64> = (0..nnz).map(|i| ((i % 9) as f64) * 0.125 + 0.25).collect();
        let cols: Vec<u64> = (0..nnz).map(|_| rng.below(rows)).collect();
        let x: Vec<f64> = (0..rows).map(|i| ((i % 5) as f64) * 0.5 + 1.0).collect();
        let mut total = 0.0f64;
        for r in 0..rows as usize {
            let mut acc = 0.0f64;
            for k in r * nnz_per_row as usize..(r + 1) * nnz_per_row as usize {
                acc += vals[k] * x[cols[k] as usize];
            }
            total += acc;
        }
        assert_eq!(s.trailing_reg(Reg::A0), total.to_bits());
    }

    #[test]
    fn towers_counts_moves() {
        for disks in [1u64, 5, 8] {
            let s = towers(disks).execute().unwrap();
            assert_eq!(s.trailing_reg(Reg::A0), (1 << disks) - 1, "hanoi({disks})");
        }
    }

    #[test]
    fn towers_uses_indirect_returns() {
        let s = towers(6).execute().unwrap();
        let rets = s
            .iter()
            .filter(|d| d.branch.map(|br| br.indirect).unwrap_or(false))
            .count();
        // One return per call: hanoi is entered 2^(n+1) − 1 times.
        assert_eq!(rets, (1 << 7) - 1);
    }

    #[test]
    fn median_matches_reference() {
        let n = 64u64;
        let s = median(n).execute().unwrap();
        let mut rng = XorShift::new(0x5eed_0031);
        let data: Vec<u64> = (0..n).map(|_| rng.below(1 << 12)).collect();
        let mut out = data.clone();
        for i in 1..(n as usize - 1) {
            let (a, c, b_) = (data[i - 1], data[i + 1], data[i]);
            let (lo, hi) = if b_ < a { (b_, a) } else { (a, b_) };
            out[i] = c.clamp(lo, hi);
        }
        let expected: u64 = out.iter().fold(0u64, |acc, v| acc.wrapping_add(*v));
        assert_eq!(s.trailing_reg(Reg::A0), expected);
    }

    #[test]
    fn atomic_histogram_conserves_updates() {
        let s = atomic_histogram(64, 500).execute().unwrap();
        assert_eq!(s.trailing_reg(Reg::A0), 500);
    }

    #[test]
    fn multiply_matches_reference() {
        let pairs = 40u64;
        let s = multiply(pairs).execute().unwrap();
        let mut rng = XorShift::new(0x5eed_0032);
        let xs: Vec<u64> = (0..pairs).map(|_| rng.below(1 << 16)).collect();
        let ys: Vec<u64> = (0..pairs).map(|_| rng.below(1 << 16)).collect();
        let expected: u64 = xs
            .iter()
            .zip(&ys)
            .fold(0u64, |acc, (x, y)| acc.wrapping_add(x * y));
        assert_eq!(s.trailing_reg(Reg::A0), expected);
    }
}
