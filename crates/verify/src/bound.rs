//! Deriving the per-class divergence bound from the trace itself.
//!
//! The counter-based Table II model and the slot-granular temporal model
//! disagree for *structural* reasons, not bugs, and every source of
//! disagreement is measurable:
//!
//! * **Priority overlap** — a lane that retires while the core recovers
//!   is Retiring temporally but charged to Bad Speculation by Table II
//!   (the model charges every recovery slot); a bubble on a lane that
//!   retires or recovers the same cycle is absorbed by the
//!   higher-priority class temporally but still increments the
//!   fetch-bubble counter. Both slot populations are counted by one
//!   extra trace walk.
//! * **Wrong-path accounting** — Table II charges flushed µops
//!   (`(C_issued − C_ret) · M_nf/r`) and the decode-to-issue refill
//!   (`M_rl · C_bm · W_C`) to Bad Speculation; the temporal model only
//!   sees the explicit recovery window. This `speculative_extra` term is
//!   computed from the same counters the model consumed.
//! * **Window ambiguity** — the Table VI overlap analysis (padded
//!   windows around I$-miss and recovery activity) measures how many
//!   cycles are fundamentally ambiguous between Frontend and Bad
//!   Speculation attribution.
//! * **Quantization** — distributed counters undercount by at most
//!   `S · (2^N − 1 + 2^N)` per event (§IV-B); scalar and add-wires
//!   counters are exact, so the term is zero for them.
//!
//! Summing the relevant terms per class yields a bound that is tight
//! enough to catch a real modelling regression (it tracks the measured
//! trace, not a global fudge factor) yet provably respected by a correct
//! implementation.

use icicle_events::{EventCounts, EventId};
use icicle_pmu::{CounterArch, DistributedCounter};
use icicle_tma::{TmaInput, TmaModel};
use icicle_trace::{OverlapAnalysis, Trace, TraceChannel};

/// Guard against float round-off when a divergence sits exactly on its
/// structural bound.
const EPSILON: f64 = 1e-6;

/// Per-class upper bounds on `|counter − temporal|` divergence, as slot
/// fractions.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct DivergenceBound {
    pub retiring: f64,
    pub bad_speculation: f64,
    pub frontend: f64,
    pub backend: f64,
}

impl DivergenceBound {
    /// A flat bound: the same fraction for every class (the CLI's
    /// `--bound PCT` escape hatch).
    pub fn flat(fraction: f64) -> DivergenceBound {
        DivergenceBound {
            retiring: fraction,
            bad_speculation: fraction,
            frontend: fraction,
            backend: fraction,
        }
    }

    /// The bound for a class by its canonical name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown class name.
    pub fn class(&self, name: &str) -> f64 {
        match name {
            "retiring" => self.retiring,
            "bad_speculation" => self.bad_speculation,
            "frontend" => self.frontend,
            "backend" => self.backend,
            other => panic!("unknown TMA class `{other}`"),
        }
    }
}

/// The measured ingredients of a [`DivergenceBound`], kept separately so
/// reports can explain *why* a bound has the value it has.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct BoundDerivation {
    /// Slots that retired during recovery (Retiring temporally, Bad
    /// Speculation under Table II).
    pub recovering_retired_slots: u64,
    /// Bubble slots absorbed by a higher-priority temporal class (the
    /// lane retired, or the core was recovering).
    pub disputed_bubble_slots: u64,
    /// Table VI padded-window overlap fraction.
    pub overlap_fraction: f64,
    /// Wrong-path issue plus recovery-refill slots charged by Table II
    /// beyond the temporal recovery window, as a slot fraction.
    pub speculative_extra: f64,
    /// Distributed-counter quantization envelope as a slot fraction
    /// (zero for exact architectures).
    pub quantization: f64,
    /// Total slots (`cycles × commit width`).
    pub total_slots: u64,
}

impl BoundDerivation {
    /// Measures every bound ingredient for one run: a single extra walk
    /// over `trace` plus arithmetic on the counters the model consumed.
    ///
    /// Returns `None` if the trace lacks the slot-TMA or overlap
    /// channels.
    pub fn measure(
        trace: &Trace,
        width: usize,
        hw: &EventCounts,
        model: TmaModel,
        arch: CounterArch,
        issue_width: usize,
    ) -> Option<BoundDerivation> {
        let cfg = trace.config();
        let retired_bits = (0..width)
            .map(|l| cfg.index_of(TraceChannel::lane(EventId::UopsRetired, l)))
            .collect::<Option<Vec<_>>>()?;
        let bubble_bits = (0..width)
            .map(|l| cfg.index_of(TraceChannel::lane(EventId::FetchBubbles, l)))
            .collect::<Option<Vec<_>>>()?;
        let recovering_bit = cfg.index_of(TraceChannel::scalar(EventId::Recovering))?;

        let mut recovering_retired = 0u64;
        let mut disputed_bubbles = 0u64;
        for cycle in trace.first_cycle()..trace.end_cycle() {
            let recovering = trace.is_high(recovering_bit, cycle);
            for lane in 0..width {
                let retired = trace.is_high(retired_bits[lane], cycle);
                if retired && recovering {
                    recovering_retired += 1;
                }
                if trace.is_high(bubble_bits[lane], cycle) && (retired || recovering) {
                    disputed_bubbles += 1;
                }
            }
        }

        let overlap = OverlapAnalysis::default().analyze(trace)?;

        // Table II's speculative terms beyond the temporal recovery
        // window, from the same counters the model consumed.
        let input = TmaInput::from_counts(hw);
        let wc = model.commit_width as f64;
        let m_total = (input.cycles as f64 * wc).max(1.0);
        let c_bm = input.branch_mispredicts as f64;
        let m_tf = (input.machine_flushes as f64 + c_bm + input.fences_retired as f64).max(1.0);
        let m_nf_r = (c_bm + input.fences_retired as f64) / m_tf;
        let flushed = input.uops_issued.saturating_sub(input.uops_retired) as f64;
        let speculative_extra =
            (flushed * m_nf_r + model.recover_length as f64 * c_bm * wc) / m_total;

        // Quantization: each commit-wide event (retired, bubbles,
        // D$-blocked) appears in up to two clamped Table II terms, and
        // `C_issued` once, so four commit envelopes plus one issue
        // envelope over-cover every propagation path.
        let quantization = match arch {
            CounterArch::Distributed => {
                let envelope = |sources: usize| {
                    DistributedCounter::new(sources).worst_case_undercount() as f64
                };
                (envelope(issue_width) + 4.0 * envelope(width)) / m_total
            }
            _ => 0.0,
        };

        Some(BoundDerivation {
            recovering_retired_slots: recovering_retired,
            disputed_bubble_slots: disputed_bubbles,
            overlap_fraction: overlap.overlap_fraction(),
            speculative_extra,
            quantization,
            total_slots: trace.len() as u64 * width as u64,
        })
    }

    /// Collapses the ingredients into per-class bounds.
    ///
    /// Retiring agrees up to quantization (both sides count the same
    /// retired µops). Bad Speculation differs by exactly the speculative
    /// extra plus recovery-retired slots, padded by the Table VI
    /// ambiguity. Frontend adds the disputed-bubble population (and
    /// inherits the Bad Speculation slack because its Table II clamp is
    /// `1 − Retiring − BadSpec`). Backend is the residual of the other
    /// three on both sides, so its bound is their sum.
    pub fn bound(&self) -> DivergenceBound {
        let per_slot = 1.0 / self.total_slots.max(1) as f64;
        let rec_retired = self.recovering_retired_slots as f64 * per_slot;
        let disputed = self.disputed_bubble_slots as f64 * per_slot;
        let slack = self.speculative_extra
            + rec_retired
            + self.overlap_fraction
            + self.quantization
            + EPSILON;
        let retiring = self.quantization + EPSILON;
        let bad_speculation = slack;
        let frontend = disputed + slack;
        DivergenceBound {
            retiring,
            bad_speculation,
            frontend,
            backend: retiring + bad_speculation + frontend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_bound_applies_to_every_class() {
        let b = DivergenceBound::flat(0.05);
        for class in ["retiring", "bad_speculation", "frontend", "backend"] {
            assert_eq!(b.class(class), 0.05);
        }
    }

    #[test]
    fn backend_bound_is_the_residual_sum() {
        let d = BoundDerivation {
            recovering_retired_slots: 10,
            disputed_bubble_slots: 4,
            overlap_fraction: 0.01,
            speculative_extra: 0.02,
            quantization: 0.0,
            total_slots: 1000,
        };
        let b = d.bound();
        assert!((b.backend - (b.retiring + b.bad_speculation + b.frontend)).abs() < 1e-12);
        assert!(
            b.frontend > b.bad_speculation,
            "disputed bubbles widen frontend"
        );
    }

    #[test]
    fn quantization_only_charges_distributed_counters() {
        let trace = {
            use icicle_events::EventVector;
            use icicle_trace::{Trace, TraceConfig};
            let mut channels = icicle_trace::SlotTemporalTma::required_channels(2);
            channels.push(TraceChannel::scalar(EventId::ICacheMiss));
            channels.push(TraceChannel::scalar(EventId::FetchBubbles));
            let mut t = Trace::new(TraceConfig::new(channels).unwrap());
            for _ in 0..64 {
                let mut v = EventVector::new();
                v.raise_lane(EventId::UopsRetired, 0);
                t.record(&v);
            }
            t
        };
        let hw = EventCounts::new();
        let model = TmaModel::boom(2);
        let exact =
            BoundDerivation::measure(&trace, 2, &hw, model, CounterArch::AddWires, 3).unwrap();
        let quantized =
            BoundDerivation::measure(&trace, 2, &hw, model, CounterArch::Distributed, 3).unwrap();
        assert_eq!(exact.quantization, 0.0);
        assert!(quantized.quantization > 0.0);
        assert!(quantized.bound().retiring > exact.bound().retiring);
    }
}
