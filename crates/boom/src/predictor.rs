//! BOOM's branch prediction: a global-history predictor (a stand-in for
//! the TAGE predictor of Table IV) and a large tagged BTB.

/// A gshare predictor: 2-bit saturating counters indexed by PC XOR global
/// history.
///
/// The real BOOM uses TAGE; gshare with a long history captures the same
/// behavioural distinction the case studies rely on — loop and correlated
/// branches predict nearly perfectly, data-dependent branches do not.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a predictor with `entries` counters (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Gshare {
        assert!(entries > 0, "predictor must have at least one entry");
        let entries = entries.next_power_of_two();
        let history_bits = entries.trailing_zeros().min(16);
        Gshare {
            table: vec![1; entries],
            history: 0,
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.history & ((1 << self.history_bits) - 1);
        (((pc >> 2) ^ h) as usize) & (self.table.len() - 1)
    }

    /// Predicts the direction of the branch at `pc` under the current
    /// global history. Pure: does not train or shift history.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains the indexed counter and shifts the resolved direction into
    /// the global history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.table[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
    }
}

/// A direct-mapped tagged branch target buffer.
#[derive(Clone, Debug)]
pub struct BoomBtb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
}

impl BoomBtb {
    /// Creates an empty BTB with `entries` slots (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> BoomBtb {
        assert!(entries > 0, "BTB must have at least one entry");
        BoomBtb {
            entries: vec![None; entries.next_power_of_two()],
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// The predicted target of the control-flow instruction at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs the resolved target.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some((pc, target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_loop_branch() {
        let mut p = Gshare::new(1024);
        let pc = 0x8000_0100;
        for _ in 0..50 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn gshare_learns_history_correlated_pattern() {
        // Pattern T N T N …: gshare disambiguates by history where a
        // plain bimodal table cannot.
        let mut p = Gshare::new(4096);
        let pc = 0x8000_0200;
        let mut taken = true;
        // Train.
        for _ in 0..200 {
            p.update(pc, taken);
            taken = !taken;
        }
        // Measure.
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
            taken = !taken;
        }
        assert!(
            correct > 90,
            "gshare should learn alternation: {correct}/100"
        );
    }

    #[test]
    fn btb_tag_mismatch_misses() {
        let mut btb = BoomBtb::new(16);
        btb.update(0x8000_0000, 0x8000_0100);
        assert_eq!(btb.lookup(0x8000_0000), Some(0x8000_0100));
        // Same index (16 entries → pc + 16*4 aliases), different tag.
        assert_eq!(btb.lookup(0x8000_0040), None);
        btb.update(0x8000_0040, 0x8000_0200);
        assert_eq!(btb.lookup(0x8000_0000), None, "evicted by alias");
    }
}
