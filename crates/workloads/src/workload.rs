//! The workload wrapper type.

use std::sync::Arc;

use icicle_isa::{DynStream, Interpreter, IsaError, Program};

/// A named, ready-to-run benchmark program.
///
/// The program image is reference-counted: benchmark harnesses build a
/// core per measurement repeat, and sharing one [`Arc`] keeps those
/// repeats from copying the text and data image every time.
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    program: Arc<Program>,
    max_instrs: u64,
}

impl Workload {
    /// Wraps a built program with a dynamic-instruction budget.
    pub fn new(name: impl Into<String>, program: Program, max_instrs: u64) -> Workload {
        Workload {
            name: name.into(),
            program: Arc::new(program),
            max_instrs,
        }
    }

    /// The workload's name (as printed in figures and tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program text and data image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A shared handle to the program — pass this to core constructors
    /// to avoid cloning the whole image per run.
    pub fn program_arc(&self) -> Arc<Program> {
        Arc::clone(&self.program)
    }

    /// Architecturally executes the workload.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors; in particular
    /// [`IsaError::InstructionLimit`] if the program exceeds its budget
    /// (which would indicate a bug in the workload definition).
    pub fn execute(&self) -> Result<DynStream, IsaError> {
        Interpreter::new(&self.program).run(self.max_instrs)
    }
}
