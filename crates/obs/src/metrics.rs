//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms behind atomics.
//!
//! A [`MetricsRegistry`] is an explicit value, not a process global:
//! the harness threads one through `RunOptions`-style structs so that a
//! campaign's metrics are scoped to that campaign, tests can assert on
//! isolated registries, and the default (`None`) costs nothing.
//!
//! [`MetricsRegistry::snapshot`] serializes in the same canonical-JSON
//! style as the bench ledger — names sort lexicographically, floats
//! print at fixed precision — so a snapshot of deterministic quantities
//! is byte-identical regardless of how many worker threads recorded
//! them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Schema tag stamped into every snapshot.
pub const METRICS_SCHEMA: &str = "icicle-metrics/v1";

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge handle (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed integer bucket bounds; an observation lands
/// in the first bucket whose bound is ≥ the value, or the implicit
/// `+inf` overflow bucket.
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..sorted.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, value: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Json {
        let buckets = self
            .bounds
            .iter()
            .map(|b| Json::Str(b.to_string()))
            .chain(std::iter::once(Json::Str("+inf".to_string())))
            .zip(&self.buckets)
            .map(|(le, bucket)| {
                Json::object(vec![
                    ("le", le),
                    ("count", Json::Int(bucket.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        Json::object(vec![
            ("count", Json::Int(self.count())),
            ("sum", Json::Int(self.sum())),
            ("buckets", Json::Array(buckets)),
        ])
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A set of named instruments. Registration takes a lock; the returned
/// handles are lock-free atomics, so hot paths register once and bump
/// forever.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        Counter(Arc::clone(
            inner.counters.entry(name.to_string()).or_default(),
        ))
    }

    /// The gauge named `name`, created at 0.0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        Gauge(Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0.0f64.to_bits()))),
        ))
    }

    /// The histogram named `name`. The first registration fixes the
    /// bucket bounds; later calls ignore `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// The registry as a canonical JSON document. Names sort
    /// lexicographically, so two registries that recorded the same
    /// quantities render byte-identically — the determinism the
    /// campaign's `--jobs 1` vs `--jobs 8` contract relies on.
    pub fn snapshot(&self) -> Json {
        let inner = self.inner.lock().unwrap();
        let counters = inner
            .counters
            .iter()
            .map(|(name, cell)| (name.clone(), Json::Int(cell.load(Ordering::Relaxed))))
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(name, cell)| {
                (
                    name.clone(),
                    Json::Num(f64::from_bits(cell.load(Ordering::Relaxed))),
                )
            })
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.to_json()))
            .collect();
        Json::object(vec![
            ("schema", Json::Str(METRICS_SCHEMA.to_string())),
            ("counters", Json::Object(counters)),
            ("gauges", Json::Object(gauges)),
            ("histograms", Json::Object(histograms)),
        ])
    }

    /// [`snapshot`](Self::snapshot) rendered as pretty canonical JSON.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_across_handles_and_threads() {
        let registry = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let c = registry.counter("cells.simulated");
                    for _ in 0..100 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(registry.counter("cells.simulated").get(), 400);
    }

    #[test]
    fn gauges_round_trip_floats() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("eta_s");
        assert_eq!(g.get(), 0.0);
        g.set(12.25);
        assert_eq!(registry.gauge("eta_s").get(), 12.25);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("cycles", &[10, 100]);
        for v in [1, 10, 11, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1022);
        let json = registry.snapshot();
        let buckets = json
            .get("histograms")
            .unwrap()
            .get("cycles")
            .unwrap()
            .get("buckets")
            .unwrap()
            .as_array()
            .unwrap();
        let counts: Vec<u64> = buckets
            .iter()
            .map(|b| b.get("count").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn snapshots_sort_names_and_render_canonically() {
        let a = MetricsRegistry::new();
        a.counter("zeta").add(2);
        a.counter("alpha").inc();
        let b = MetricsRegistry::new();
        b.counter("alpha").inc();
        b.counter("zeta").add(2);
        assert_eq!(a.render(), b.render());
        let snapshot = a.snapshot();
        assert_eq!(
            snapshot.get("schema").unwrap().as_str(),
            Some(METRICS_SCHEMA)
        );
        let rendered = a.render();
        assert!(rendered.find("\"alpha\"").unwrap() < rendered.find("\"zeta\"").unwrap());
    }
}
