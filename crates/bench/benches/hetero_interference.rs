//! Heterogeneous-SoC interference study — this reproduction's extension
//! of the paper's §VII future-work item ("performance characterization
//! on heterogeneous systems"). Co-schedules workload pairs on a
//! Rocket + LargeBoom SoC sharing the 512 KiB L2 and shows TMA
//! attributing each victim's slowdown to Mem Bound.

use icicle::prelude::*;
use icicle::workloads::{micro, spec, Workload};

fn solo_cycles_boom(w: &Workload) -> (u64, f64) {
    let mut soc = SocBuilder::new()
        .boom(BoomConfig::large(), w)
        .expect("workload executes")
        .build();
    let reports = soc.run(100_000_000).expect("soc finishes");
    (
        reports[0].report.cycles,
        reports[0].report.tma.backend.mem_bound,
    )
}

fn main() {
    println!("=== Heterogeneous SoC: shared-L2 interference (extension) ===\n");
    println!(
        "{:<18} {:<18} {:>12} {:>12} {:>9} {:>14}",
        "victim (boom)",
        "aggressor (rocket)",
        "solo cyc",
        "co-run cyc",
        "slowdown",
        "mem-bnd shift"
    );
    let aggressors: Vec<Workload> = vec![
        micro::vvadd(1 << 12),           // streaming but small
        spec::mcf_sized(1 << 17, 8_000), // 1 MiB L2 thrasher
    ];
    for aggressor in &aggressors {
        let victim = spec::mcf_sized(1 << 15, 16_000); // 256 KiB, L2-resident
        let (solo, solo_mem) = solo_cycles_boom(&victim);
        let mut soc = SocBuilder::new()
            .boom(BoomConfig::large(), &victim)
            .expect("victim executes")
            .rocket(RocketConfig::default(), aggressor)
            .expect("aggressor executes")
            .build();
        let reports = soc.run(100_000_000).expect("soc finishes");
        let co = reports[0].report.cycles;
        let co_mem = reports[0].report.tma.backend.mem_bound;
        println!(
            "{:<18} {:<18} {:>12} {:>12} {:>+8.1}% {:>+7.1}pp -> {:.1}%",
            victim.name(),
            aggressor.name(),
            solo,
            co,
            100.0 * (co as f64 / solo as f64 - 1.0),
            100.0 * (co_mem - solo_mem),
            100.0 * co_mem,
        );
    }

    // Contention accounting from the shared L2 itself.
    let victim = spec::mcf_sized(1 << 15, 16_000);
    let aggressor = spec::mcf_sized(1 << 17, 8_000);
    let mut soc = SocBuilder::new()
        .boom(BoomConfig::large(), &victim)
        .expect("victim executes")
        .boom(BoomConfig::large(), &aggressor)
        .expect("aggressor executes")
        .build();
    let reports = soc.run(100_000_000).expect("soc finishes");
    println!(
        "\ntwo-BOOM co-run: victim {} cycles, aggressor {} cycles; shared L2 saw \
         {} accesses with {} bus-queueing cycles",
        reports[0].report.cycles,
        reports[1].report.cycles,
        soc.shared_l2().accesses(),
        soc.shared_l2().contention_cycles(),
    );
    println!(
        "\nthe victim's added latency is pure L2-capacity interference —\n\
         observable in-band through the same Mem-Bound TMA class the\n\
         single-core model uses, which is the point of extending TMA to\n\
         heterogeneous systems."
    );
}
