//! Regenerates Fig. 9: modelled post-placement metrics for the counter
//! implementations across the five BOOM sizes — (a) power overhead, plus
//! area and wirelength, and (b) the normalized longest combinational
//! path through the CSR file.
//!
//! Paper envelope to reproduce: at most ≈4.15% power, ≈1.54% area,
//! ≈9.93% wirelength; every configuration passes 200 MHz; the adder
//! chain is competitive at Small/Medium but its delay crosses above the
//! distributed counters from Large up.

use icicle::pmu::CounterArch;
use icicle::prelude::*;
use icicle::vlsi::evaluate;

const ARCHS: [CounterArch; 3] = [
    CounterArch::Scalar,
    CounterArch::AddWires,
    CounterArch::Distributed,
];

fn main() {
    println!("=== Fig. 9(a): post-placement overheads vs base design ===\n");
    println!(
        "{:<8} {:<12} {:>8} {:>8} {:>12} {:>10}",
        "size", "impl", "power", "area", "wirelength", "200MHz"
    );
    let mut worst = (0.0f64, 0.0f64, 0.0f64);
    for size in BoomSize::ALL {
        for arch in ARCHS {
            let r = evaluate(size, arch);
            println!(
                "{:<8} {:<12} {:>7.2}% {:>7.2}% {:>11.2}% {:>10}",
                size.name(),
                format!("{arch:?}"),
                r.power_overhead_pct(),
                r.area_overhead_pct(),
                r.wirelength_overhead_pct(),
                if r.meets_200mhz() { "pass" } else { "FAIL" }
            );
            worst.0 = worst.0.max(r.power_overhead_pct());
            worst.1 = worst.1.max(r.area_overhead_pct());
            worst.2 = worst.2.max(r.wirelength_overhead_pct());
        }
    }
    println!(
        "\nmaxima: power {:.2}% (paper 4.15%), area {:.2}% (paper 1.54%), \
         wirelength {:.2}% (paper 9.93%)",
        worst.0, worst.1, worst.2
    );

    println!("\n=== Fig. 9(b): normalized longest CSR-crossing path ===\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12}",
        "size", "scalar", "add-wires", "distributed"
    );
    for size in BoomSize::ALL {
        let row: Vec<f64> = ARCHS
            .iter()
            .map(|a| evaluate(size, *a).normalized_csr_delay())
            .collect();
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.3}",
            size.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "\nshape check: add-wires <= distributed at small/medium, \
         add-wires > distributed from large up (the Fig. 9b crossover): {}",
        BoomSize::ALL.iter().all(|s| {
            let a = evaluate(*s, CounterArch::AddWires).csr_path_ps;
            let d = evaluate(*s, CounterArch::Distributed).csr_path_ps;
            match s {
                BoomSize::Small | BoomSize::Medium => a <= d,
                _ => a > d,
            }
        })
    );
}
