//! The three counter implementations of §IV-B.

/// Which counter implementation a counter slot uses (Fig. 6).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum CounterArch {
    /// Stock Chipyard semantics: events mapped to the same counter are
    /// ORed; concurrent assertions increment by at most one.
    #[default]
    Stock,
    /// One full counter per event source (lane).
    Scalar,
    /// Local adder chain producing a multi-bit increment (Fig. 6a).
    AddWires,
    /// Per-source local counters with rotating-arbiter overflow collection
    /// (Fig. 6b).
    Distributed,
}

impl CounterArch {
    /// Every implementation, in evaluation order.
    pub const ALL: [CounterArch; 4] = [
        CounterArch::Stock,
        CounterArch::Scalar,
        CounterArch::AddWires,
        CounterArch::Distributed,
    ];

    /// The kebab-case name used by the CLI and campaign specs.
    pub fn name(self) -> &'static str {
        match self {
            CounterArch::Stock => "stock",
            CounterArch::Scalar => "scalar",
            CounterArch::AddWires => "add-wires",
            CounterArch::Distributed => "distributed",
        }
    }

    /// Parses a [`CounterArch::name`] back into the enum.
    pub fn from_name(name: &str) -> Option<CounterArch> {
        CounterArch::ALL.into_iter().find(|a| a.name() == name)
    }
}

impl std::fmt::Display for CounterArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One architectural counter per event source.
///
/// Exact, but each lane consumes one of the 31 HPM counters, which is why
/// the paper calls this approach infeasible for wide designs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScalarBank {
    values: Vec<u64>,
}

impl ScalarBank {
    /// Creates a bank with one counter per source.
    ///
    /// # Panics
    ///
    /// Panics if `num_sources` is zero or exceeds 16.
    pub fn new(num_sources: usize) -> ScalarBank {
        assert!(
            (1..=16).contains(&num_sources),
            "source count {num_sources} out of range"
        );
        ScalarBank {
            values: vec![0; num_sources],
        }
    }

    /// Number of sources (and counters).
    pub fn num_sources(&self) -> usize {
        self.values.len()
    }

    /// Advances one cycle; bit `i` of `asserted` is source `i`'s signal.
    pub fn tick(&mut self, asserted: u16) {
        for (i, v) in self.values.iter_mut().enumerate() {
            if asserted & (1 << i) != 0 {
                *v += 1;
            }
        }
    }

    /// Advances `repeats` cycles that all carry the same assertion mask,
    /// bit-identically to calling [`tick`](ScalarBank::tick) that many
    /// times.
    pub fn tick_many(&mut self, asserted: u16, repeats: u64) {
        for (i, v) in self.values.iter_mut().enumerate() {
            if asserted & (1 << i) != 0 {
                *v += repeats;
            }
        }
    }

    /// The counter of a single source.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn lane_value(&self, source: usize) -> u64 {
        self.values[source]
    }

    /// Sum over all per-source counters (the software-visible total).
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }
}

/// A single counter fed by a multi-bit increment from a local adder chain
/// (Fig. 6a).
///
/// Exact: the increment each cycle equals the number of asserted sources.
/// The chain's combinational depth — modelled by
/// [`HardwareFootprint`](crate::HardwareFootprint) — grows linearly with
/// the source count because the paper's Chisel implementation compiled to
/// a sequential chain rather than a tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AddWiresCounter {
    value: u64,
    num_sources: usize,
}

impl AddWiresCounter {
    /// Creates a counter aggregating `num_sources` sources.
    ///
    /// # Panics
    ///
    /// Panics if `num_sources` is zero or exceeds 16.
    pub fn new(num_sources: usize) -> AddWiresCounter {
        assert!(
            (1..=16).contains(&num_sources),
            "source count {num_sources} out of range"
        );
        AddWiresCounter {
            value: 0,
            num_sources,
        }
    }

    /// Number of aggregated sources.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Width in bits of the increment bus (`⌈log2(sources + 1)⌉`).
    pub fn increment_width(&self) -> u32 {
        usize::BITS - self.num_sources.leading_zeros()
    }

    /// Advances one cycle with the given per-source assertion mask.
    pub fn tick(&mut self, asserted: u16) {
        let masked = asserted & mask_for(self.num_sources);
        self.value += masked.count_ones() as u64;
    }

    /// Advances `repeats` cycles that all carry the same assertion mask,
    /// bit-identically to calling [`tick`](AddWiresCounter::tick) that
    /// many times.
    pub fn tick_many(&mut self, asserted: u16, repeats: u64) {
        let masked = asserted & mask_for(self.num_sources);
        self.value += masked.count_ones() as u64 * repeats;
    }

    /// The software-visible counter value.
    pub fn value(&self) -> u64 {
        self.value
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct LocalCounter {
    count: u64,
    overflow: bool,
}

/// Per-source local counters with a rotating one-hot overflow arbiter
/// (Fig. 6b).
///
/// Each local counter counts its own source and raises an overflow flag on
/// wrapping at `2^N`. The principal counter polls one flag per cycle with
/// a rotating mask; a granted flag clears (like a clear-on-read register)
/// and bumps the principal by one, so the principal counts *overflows*,
/// each representing `2^N` events. [`software_value`] applies the `× 2^N`
/// post-processing the artifact harness performs.
///
/// The local width satisfies `2^N ≥ sources`, so a local counter cannot
/// wrap twice between two of its arbiter grants — no events are ever lost;
/// they are only *delayed*, giving the bounded undercount of
/// [`worst_case_undercount`].
///
/// [`software_value`]: DistributedCounter::software_value
/// [`worst_case_undercount`]: DistributedCounter::worst_case_undercount
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DistributedCounter {
    locals: Vec<LocalCounter>,
    principal: u64,
    width: u32,
    grant: usize,
}

impl DistributedCounter {
    /// Creates a counter for `num_sources` sources with the minimum local
    /// width `N = max(1, ⌈log2(sources)⌉)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sources` is zero or exceeds 16.
    pub fn new(num_sources: usize) -> DistributedCounter {
        let width = (usize::BITS - (num_sources.max(2) - 1).leading_zeros()).max(1);
        DistributedCounter::with_width(num_sources, width)
    }

    /// Creates a counter with an explicit local width `N`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sources` is zero or exceeds 16, or if `2^width` is
    /// smaller than the source count (a local counter could wrap twice
    /// between grants and lose events).
    pub fn with_width(num_sources: usize, width: u32) -> DistributedCounter {
        assert!(
            (1..=16).contains(&num_sources),
            "source count {num_sources} out of range"
        );
        assert!(
            (1u64 << width) >= num_sources as u64,
            "local width {width} too narrow for {num_sources} sources"
        );
        DistributedCounter {
            locals: vec![
                LocalCounter {
                    count: 0,
                    overflow: false
                };
                num_sources
            ],
            principal: 0,
            width,
            grant: 0,
        }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.locals.len()
    }

    /// The local counter width `N`.
    pub fn local_width(&self) -> u32 {
        self.width
    }

    /// Advances one cycle with the given per-source assertion mask.
    pub fn tick(&mut self, asserted: u16) {
        let wrap = 1u64 << self.width;
        for (i, local) in self.locals.iter_mut().enumerate() {
            if asserted & (1 << i) != 0 {
                local.count += 1;
                if local.count == wrap {
                    local.count = 0;
                    debug_assert!(
                        !local.overflow,
                        "local counter wrapped twice between grants"
                    );
                    local.overflow = true;
                }
            }
        }
        // Rotating one-hot arbiter: exactly one local is inspected per
        // cycle; its overflow register clears on select.
        let granted = &mut self.locals[self.grant];
        if granted.overflow {
            granted.overflow = false;
            self.principal += 1;
        }
        self.grant = (self.grant + 1) % self.locals.len();
    }

    /// Advances `repeats` cycles that all carry the same assertion mask,
    /// bit-identically to calling [`tick`](DistributedCounter::tick) that
    /// many times — in closed form, so fast-forwarding a long stall span
    /// does not loop the arbiter.
    ///
    /// The derivation leans on the width invariant `2^N ≥ S` (enforced at
    /// construction): an asserted local wraps at most once between two of
    /// its arbiter grants, so over `repeats` ticks every wrap except
    /// possibly the last is guaranteed to be harvested, and the last wrap
    /// and any initially-pending flag are decided by comparing their next
    /// grant tick against the span length.
    pub fn tick_many(&mut self, asserted: u16, repeats: u64) {
        if repeats == 0 {
            return;
        }
        let s = self.locals.len() as u64;
        let wrap = 1u64 << self.width;
        let k = repeats;
        let mut principal_delta = 0u64;
        for (i, local) in self.locals.iter_mut().enumerate() {
            // First tick (1-based, within the span) at which the arbiter
            // inspects this local, then every `s` ticks after.
            let d = (i as u64 + s - self.grant as u64) % s + 1;
            let visits = if k >= d { (k - d) / s + 1 } else { 0 };
            let hit = asserted & (1 << i) != 0;
            let wraps = if hit { (local.count + k) / wrap } else { 0 };
            let mut harvested = 0u64;
            if local.overflow && visits > 0 {
                // The initially-pending flag is collected at the first
                // visit (possibly re-set by a later wrap, counted below).
                harvested += 1;
            }
            if wraps > 0 {
                // All but the last wrap precede the span end by ≥ 2^N ≥ S
                // ticks, so each has a harvesting visit inside the span.
                harvested += wraps - 1;
                let first_wrap = wrap - local.count;
                let last_wrap = first_wrap + (wraps - 1) * wrap;
                // Increments precede the grant within a tick, so a visit
                // on the wrap tick itself harvests it.
                let next_visit = if last_wrap <= d {
                    d
                } else {
                    d + (last_wrap - d).div_ceil(s) * s
                };
                if next_visit <= k {
                    harvested += 1;
                }
            }
            let flags = u64::from(local.overflow) + wraps;
            debug_assert!(
                flags <= harvested + 1,
                "local counter wrapped twice between grants"
            );
            local.overflow = flags > harvested;
            if hit {
                local.count = (local.count + k) % wrap;
            }
            principal_delta += harvested;
        }
        self.principal += principal_delta;
        self.grant = ((self.grant as u64 + k) % s) as usize;
    }

    /// The raw principal counter (counts overflows, not events).
    pub fn raw_value(&self) -> u64 {
        self.principal
    }

    /// The software-visible value after the `× 2^N` post-processing.
    pub fn software_value(&self) -> u64 {
        self.principal << self.width
    }

    /// The exact event count including residuals still sitting in local
    /// counters and unharvested overflow flags. Only available to the
    /// validation flow — real hardware cannot read the locals.
    pub fn precise_value(&self) -> u64 {
        let residual: u64 = self
            .locals
            .iter()
            .map(|l| l.count + if l.overflow { 1u64 << self.width } else { 0 })
            .sum();
        self.software_value() + residual
    }

    /// Upper bound on `precise − software` at any instant, as derived in
    /// §IV-B: each of the `S` local counters can hold at most `2^N − 1`
    /// leftover events, plus one full unharvested overflow each.
    pub fn worst_case_undercount(&self) -> u64 {
        let per_local = (1u64 << self.width) - 1 + (1u64 << self.width);
        self.locals.len() as u64 * per_local
    }
}

fn mask_for(num_sources: usize) -> u16 {
    if num_sources >= 16 {
        u16::MAX
    } else {
        (1u16 << num_sources) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_bank_counts_each_lane() {
        let mut b = ScalarBank::new(3);
        b.tick(0b101);
        b.tick(0b001);
        assert_eq!(b.lane_value(0), 2);
        assert_eq!(b.lane_value(1), 0);
        assert_eq!(b.lane_value(2), 1);
        assert_eq!(b.total(), 3);
    }

    #[test]
    fn add_wires_counts_concurrency_exactly() {
        let mut c = AddWiresCounter::new(4);
        c.tick(0b1111);
        c.tick(0b0011);
        c.tick(0);
        assert_eq!(c.value(), 6);
    }

    #[test]
    fn add_wires_ignores_out_of_range_bits() {
        let mut c = AddWiresCounter::new(2);
        c.tick(0b1111); // only two sources exist
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn add_wires_increment_width() {
        assert_eq!(AddWiresCounter::new(1).increment_width(), 1);
        assert_eq!(AddWiresCounter::new(3).increment_width(), 2);
        assert_eq!(AddWiresCounter::new(4).increment_width(), 3);
        assert_eq!(AddWiresCounter::new(8).increment_width(), 4);
    }

    #[test]
    fn distributed_width_defaults() {
        assert_eq!(DistributedCounter::new(1).local_width(), 1);
        assert_eq!(DistributedCounter::new(4).local_width(), 2);
        assert_eq!(DistributedCounter::new(5).local_width(), 3);
        assert_eq!(DistributedCounter::new(8).local_width(), 3);
    }

    #[test]
    #[should_panic(expected = "too narrow")]
    fn distributed_narrow_width_rejected() {
        let _ = DistributedCounter::with_width(4, 1);
    }

    #[test]
    fn distributed_never_loses_events() {
        // Saturate all 4 sources for many cycles: precise value must be
        // exact, software value within the undercount bound.
        let mut c = DistributedCounter::new(4);
        let cycles = 10_000u64;
        for _ in 0..cycles {
            c.tick(0b1111);
        }
        let exact = 4 * cycles;
        assert_eq!(c.precise_value(), exact);
        let under = exact - c.software_value();
        assert!(under <= c.worst_case_undercount(), "undercount {under}");
    }

    #[test]
    fn distributed_quiet_tail_drains_overflows() {
        let mut c = DistributedCounter::new(4);
        for _ in 0..100 {
            c.tick(0b1111);
        }
        // Quiet cycles let the arbiter harvest the remaining flags.
        for _ in 0..8 {
            c.tick(0);
        }
        let exact = 400;
        assert_eq!(c.precise_value(), exact);
        // After draining, only sub-2^N residuals remain.
        assert!(exact - c.software_value() <= 4 * 3);
    }

    #[test]
    fn distributed_single_source_halves_nothing() {
        let mut c = DistributedCounter::new(1);
        for _ in 0..64 {
            c.tick(1);
        }
        assert_eq!(c.precise_value(), 64);
        assert!(c.software_value() <= 64);
    }

    #[test]
    fn paper_worked_example_fetch_width_four() {
        // §IV-B: BOOM fetch width 4 → each local counts to 3 before
        // overflow (N = 2); the paper bounds the leftover at 12 events
        // when only residuals (not pending flags) remain.
        let c = DistributedCounter::new(4);
        assert_eq!(c.local_width(), 2);
        let residual_only = c.num_sources() as u64 * ((1u64 << c.local_width()) - 1);
        assert_eq!(residual_only, 12);
        // The error formula from the paper's smallest benchmark:
        let fetch_bubbles = 929.0;
        let err = residual_only as f64 / (fetch_bubbles + residual_only as f64);
        assert!((err - 0.0128).abs() < 0.0005, "error was {err}");
    }

    #[test]
    fn distributed_tick_many_matches_looped_ticks() {
        // Brute-force the closed form against the per-cycle arbiter over a
        // grid of source counts, widths, warm-up lengths (arbitrary local
        // counts, flags, and grant positions), constant masks, and span
        // lengths. Full-state equality, not just the software value.
        let mut x = 0x9e3779b9u32;
        let mut rand = move || {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            x >> 16
        };
        for sources in [1usize, 2, 3, 4, 7, 8] {
            let min_width = (usize::BITS - (sources.max(2) - 1).leading_zeros()).max(1);
            for width in [min_width, min_width + 1] {
                for _ in 0..40 {
                    let mut bulk = DistributedCounter::with_width(sources, width);
                    let warm_len = (rand() % 37) as usize;
                    let span_mask = (rand() as u16) & mask_for(sources);
                    for _ in 0..warm_len {
                        bulk.tick((rand() as u16) & mask_for(sources));
                    }
                    let mut stepped = bulk.clone();
                    let k = 1 + (rand() as u64 % 300);
                    bulk.tick_many(span_mask, k);
                    for _ in 0..k {
                        stepped.tick(span_mask);
                    }
                    assert_eq!(
                        bulk, stepped,
                        "sources={sources} width={width} mask={span_mask:#b} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn implementations_agree_on_bursty_pattern() {
        let mut scalar = ScalarBank::new(4);
        let mut wires = AddWiresCounter::new(4);
        let mut dist = DistributedCounter::new(4);
        let mut expected = 0u64;
        // Deterministic bursty pattern.
        let mut x = 0x12345678u32;
        for _ in 0..50_000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let mask = (x >> 13) as u16 & 0b1111;
            expected += mask.count_ones() as u64;
            scalar.tick(mask);
            wires.tick(mask);
            dist.tick(mask);
        }
        assert_eq!(scalar.total(), expected);
        assert_eq!(wires.value(), expected);
        assert_eq!(dist.precise_value(), expected);
        assert!(expected - dist.software_value() <= dist.worst_case_undercount());
    }
}
