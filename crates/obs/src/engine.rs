//! Process-wide engine-health tallies: what the skip engine and the
//! parallel SoC interconnect did, counted outside the hot loops.
//!
//! Mirrors the [`crate::sim`] pattern: the engines accumulate in plain
//! locals (zero atomics in `step()`/skip inner loops) and *settle* once
//! per session into these statics; a consumer that wants per-interval
//! numbers snapshots an [`EngineCounts`] baseline and diffs with
//! [`EngineCounts::since`]. Only the serving layer settles the deltas
//! into a metrics registry — always as *volatile* instruments, because
//! stall cycles and wait times are timing-dependent by nature.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket bounds for the skip-span length histogram (cycles per
/// accepted skip span).
pub const SKIP_SPAN_BOUNDS: [u64; 6] = [4, 16, 64, 256, 1024, 4096];

/// Per-core L2 slots tracked; cores past the last slot fold into it
/// (the SoC mixes top out at 4 cores today).
pub const ENGINE_CORES: usize = 8;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

struct EngineStats {
    // Skip engine (crates/perf): accepted spans, cycles fast-forwarded,
    // probe steps taken, probes that found no skippable span.
    skip_spans: AtomicU64,
    skip_cycles: AtomicU64,
    skip_probes: AtomicU64,
    skip_probe_misses: AtomicU64,
    skip_span_buckets: [AtomicU64; SKIP_SPAN_BOUNDS.len() + 1],
    // L2 interconnect (crates/mem link driven by crates/soc): null
    // messages (horizon advances), stall episodes in `access`, spin
    // iterations inside those episodes, and microseconds spent stalled.
    l2_null_messages: [AtomicU64; ENGINE_CORES],
    l2_stall_waits: [AtomicU64; ENGINE_CORES],
    l2_stall_spins: [AtomicU64; ENGINE_CORES],
    l2_stall_us: [AtomicU64; ENGINE_CORES],
}

static STATS: EngineStats = EngineStats {
    skip_spans: ZERO,
    skip_cycles: ZERO,
    skip_probes: ZERO,
    skip_probe_misses: ZERO,
    skip_span_buckets: [ZERO; SKIP_SPAN_BOUNDS.len() + 1],
    l2_null_messages: [ZERO; ENGINE_CORES],
    l2_stall_waits: [ZERO; ENGINE_CORES],
    l2_stall_spins: [ZERO; ENGINE_CORES],
    l2_stall_us: [ZERO; ENGINE_CORES],
};

/// A plain-value snapshot of the engine tallies.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct EngineCounts {
    pub skip_spans: u64,
    pub skip_cycles: u64,
    pub skip_probes: u64,
    pub skip_probe_misses: u64,
    pub skip_span_buckets: [u64; SKIP_SPAN_BOUNDS.len() + 1],
    pub l2_null_messages: [u64; ENGINE_CORES],
    pub l2_stall_waits: [u64; ENGINE_CORES],
    pub l2_stall_spins: [u64; ENGINE_CORES],
    pub l2_stall_us: [u64; ENGINE_CORES],
}

impl EngineCounts {
    /// The saturating per-field delta `self - earlier`.
    pub fn since(&self, earlier: &EngineCounts) -> EngineCounts {
        let diff = |a: u64, b: u64| a.saturating_sub(b);
        let mut out = EngineCounts {
            skip_spans: diff(self.skip_spans, earlier.skip_spans),
            skip_cycles: diff(self.skip_cycles, earlier.skip_cycles),
            skip_probes: diff(self.skip_probes, earlier.skip_probes),
            skip_probe_misses: diff(self.skip_probe_misses, earlier.skip_probe_misses),
            ..EngineCounts::default()
        };
        for i in 0..self.skip_span_buckets.len() {
            out.skip_span_buckets[i] =
                diff(self.skip_span_buckets[i], earlier.skip_span_buckets[i]);
        }
        for i in 0..ENGINE_CORES {
            out.l2_null_messages[i] = diff(self.l2_null_messages[i], earlier.l2_null_messages[i]);
            out.l2_stall_waits[i] = diff(self.l2_stall_waits[i], earlier.l2_stall_waits[i]);
            out.l2_stall_spins[i] = diff(self.l2_stall_spins[i], earlier.l2_stall_spins[i]);
            out.l2_stall_us[i] = diff(self.l2_stall_us[i], earlier.l2_stall_us[i]);
        }
        out
    }
}

/// The current cumulative tallies.
pub fn engine_stats() -> EngineCounts {
    let load = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
    let mut out = EngineCounts {
        skip_spans: load(&STATS.skip_spans),
        skip_cycles: load(&STATS.skip_cycles),
        skip_probes: load(&STATS.skip_probes),
        skip_probe_misses: load(&STATS.skip_probe_misses),
        ..EngineCounts::default()
    };
    for (out_slot, cell) in out
        .skip_span_buckets
        .iter_mut()
        .zip(&STATS.skip_span_buckets)
    {
        *out_slot = load(cell);
    }
    for i in 0..ENGINE_CORES {
        out.l2_null_messages[i] = load(&STATS.l2_null_messages[i]);
        out.l2_stall_waits[i] = load(&STATS.l2_stall_waits[i]);
        out.l2_stall_spins[i] = load(&STATS.l2_stall_spins[i]);
        out.l2_stall_us[i] = load(&STATS.l2_stall_us[i]);
    }
    out
}

/// The bucket index in [`SKIP_SPAN_BOUNDS`]-shaped arrays for a span of
/// `cycles` — shared by the accumulating engine and the settling
/// consumer so the two always agree.
#[inline]
pub fn skip_span_bucket(cycles: u64) -> usize {
    SKIP_SPAN_BOUNDS
        .iter()
        .position(|&bound| cycles <= bound)
        .unwrap_or(SKIP_SPAN_BOUNDS.len())
}

/// Settles one skip session's locals: `span_buckets` is a
/// [`SKIP_SPAN_BOUNDS`]`+1`-shaped tally of accepted span lengths.
pub fn record_skip(
    spans: u64,
    cycles: u64,
    probes: u64,
    probe_misses: u64,
    span_buckets: &[u64; SKIP_SPAN_BOUNDS.len() + 1],
) {
    if spans == 0 && probes == 0 {
        return;
    }
    STATS.skip_spans.fetch_add(spans, Ordering::Relaxed);
    STATS.skip_cycles.fetch_add(cycles, Ordering::Relaxed);
    STATS.skip_probes.fetch_add(probes, Ordering::Relaxed);
    STATS
        .skip_probe_misses
        .fetch_add(probe_misses, Ordering::Relaxed);
    for (cell, delta) in STATS.skip_span_buckets.iter().zip(span_buckets) {
        if *delta > 0 {
            cell.fetch_add(*delta, Ordering::Relaxed);
        }
    }
}

/// Settles one core's L2 interconnect tallies for a finished run; cores
/// beyond the tracked slots fold into the last slot.
pub fn record_l2_core(
    core: usize,
    null_messages: u64,
    stall_waits: u64,
    stall_spins: u64,
    stall_us: u64,
) {
    let slot = core.min(ENGINE_CORES - 1);
    STATS.l2_null_messages[slot].fetch_add(null_messages, Ordering::Relaxed);
    STATS.l2_stall_waits[slot].fetch_add(stall_waits, Ordering::Relaxed);
    STATS.l2_stall_spins[slot].fetch_add(stall_spins, Ordering::Relaxed);
    STATS.l2_stall_us[slot].fetch_add(stall_us, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_settle_and_diff() {
        let before = engine_stats();
        let mut buckets = [0u64; SKIP_SPAN_BOUNDS.len() + 1];
        buckets[skip_span_bucket(3)] += 1;
        buckets[skip_span_bucket(100)] += 1;
        buckets[skip_span_bucket(1 << 20)] += 1;
        record_skip(3, 1_000_103, 10, 7, &buckets);
        record_l2_core(1, 50, 2, 300, 40);
        record_l2_core(100, 5, 0, 0, 0); // folds into the last slot
        let delta = engine_stats().since(&before);
        assert_eq!(delta.skip_spans, 3);
        assert_eq!(delta.skip_cycles, 1_000_103);
        assert_eq!(delta.skip_probes, 10);
        assert_eq!(delta.skip_probe_misses, 7);
        assert_eq!(delta.skip_span_buckets[0], 1); // 3 ≤ 4
        assert_eq!(delta.skip_span_buckets[skip_span_bucket(100)], 1);
        assert_eq!(delta.skip_span_buckets[SKIP_SPAN_BOUNDS.len()], 1);
        assert_eq!(delta.l2_null_messages[1], 50);
        assert_eq!(delta.l2_stall_spins[1], 300);
        assert_eq!(delta.l2_null_messages[ENGINE_CORES - 1], 5);
    }

    #[test]
    fn bucket_mapping_matches_bounds() {
        assert_eq!(skip_span_bucket(0), 0);
        assert_eq!(skip_span_bucket(4), 0);
        assert_eq!(skip_span_bucket(5), 1);
        assert_eq!(skip_span_bucket(4096), SKIP_SPAN_BOUNDS.len() - 1);
        assert_eq!(skip_span_bucket(4097), SKIP_SPAN_BOUNDS.len());
    }
}
