//! The per-cell differential: counter-based Table II vs slot-granular
//! temporal TMA on the *same* run.
//!
//! One simulation produces both views — the PMU counters feed the
//! Table II model exactly as software would read them (including any
//! distributed-counter quantization), while the recorded trace feeds
//! [`SlotTemporalTma`]. Their per-class difference must stay within the
//! [`DivergenceBound`] derived from the same trace.

use icicle_boom::{Boom, BoomConfig};
use icicle_campaign::json::Json;
use icicle_campaign::{data_seed, CellSpec, CoreSelect};
use icicle_events::{EventCore, EventId};
use icicle_perf::{Perf, PerfOptions, SkipPolicy};
use icicle_pmu::CounterArch;
use icicle_rocket::{Rocket, RocketConfig};
use icicle_tma::TopLevel;
use icicle_trace::{SlotReport, SlotTemporalTma, TraceChannel, TraceConfig};
use icicle_workloads::{self as workloads, Workload};

use crate::bound::{BoundDerivation, DivergenceBound};

/// Canonical class order, shared by reports and snapshots.
pub const CLASS_NAMES: [&str; 4] = ["retiring", "bad_speculation", "frontend", "backend"];

/// One TMA class seen from both sides.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ClassReading {
    /// Canonical class name (one of [`CLASS_NAMES`]).
    pub name: &'static str,
    /// Counter-based Table II fraction.
    pub counter: f64,
    /// Trace-based slot-granular fraction.
    pub temporal: f64,
    /// The divergence this class is allowed.
    pub bound: f64,
}

impl ClassReading {
    /// Absolute counter-vs-temporal divergence.
    pub fn divergence(&self) -> f64 {
        (self.counter - self.temporal).abs()
    }

    /// Whether the divergence respects the bound.
    pub fn within_bound(&self) -> bool {
        self.divergence() <= self.bound
    }

    /// Divergence as a fraction of the allowed bound (the severity used
    /// to rank cells; > 1 means failure).
    pub fn ratio(&self) -> f64 {
        self.divergence() / self.bound.max(f64::MIN_POSITIVE)
    }
}

/// The verdict for one campaign cell.
#[derive(Clone, Debug)]
pub struct CellVerdict {
    pub cell: CellSpec,
    pub cycles: u64,
    /// `cycles × commit width`.
    pub slots: u64,
    /// The four classes in [`CLASS_NAMES`] order.
    pub classes: [ClassReading; 4],
    /// The measured bound ingredients (flat bounds keep them for
    /// context).
    pub derivation: BoundDerivation,
}

impl CellVerdict {
    /// Whether every class is within its bound.
    pub fn passed(&self) -> bool {
        self.classes.iter().all(ClassReading::within_bound)
    }

    /// The class closest to (or past) its bound.
    pub fn worst(&self) -> &ClassReading {
        self.classes
            .iter()
            .max_by(|a, b| a.ratio().total_cmp(&b.ratio()))
            .expect("four classes")
    }

    /// The worst class's bound-consumption ratio.
    pub fn worst_ratio(&self) -> f64 {
        self.worst().ratio()
    }

    /// The full verdict as a canonical JSON node (used by the divergence
    /// report).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("cell", Json::Str(self.cell.label())),
            ("cycles", Json::Int(self.cycles)),
            ("slots", Json::Int(self.slots)),
            (
                "classes",
                Json::Array(
                    self.classes
                        .iter()
                        .map(|c| {
                            Json::object(vec![
                                ("class", Json::Str(c.name.to_string())),
                                ("counter", Json::Num(c.counter)),
                                ("temporal", Json::Num(c.temporal)),
                                ("divergence", Json::Num(c.divergence())),
                                ("bound", Json::Num(c.bound)),
                                ("within_bound", Json::Bool(c.within_bound())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("worst_class", Json::Str(self.worst().name.to_string())),
            ("worst_ratio", Json::Num(self.worst_ratio())),
        ])
    }

    /// The two breakdowns only — the golden-snapshot payload, which must
    /// not churn when bound derivation details evolve.
    pub fn snapshot_json(&self) -> Json {
        let side = |pick: fn(&ClassReading) -> f64| {
            Json::object(
                self.classes
                    .iter()
                    .map(|c| (c.name, Json::Num(pick(c))))
                    .collect(),
            )
        };
        Json::object(vec![
            ("cell", Json::Str(self.cell.label())),
            ("cycles", Json::Int(self.cycles)),
            ("slots", Json::Int(self.slots)),
            ("counter", side(|c| c.counter)),
            ("temporal", side(|c| c.temporal)),
        ])
    }
}

/// Verifies one campaign cell: resolve the workload (with the cell's
/// deterministic data seed), then run [`verify_workload`].
///
/// # Errors
///
/// Returns a description of the failure: unknown workload, stock
/// counters (which cannot support TMA at all), or a measurement error.
pub fn verify_cell(cell: &CellSpec, flat_bound: Option<f64>) -> Result<CellVerdict, String> {
    verify_cell_with(cell, flat_bound, None)
}

/// [`verify_cell`] with an explicit cycle-skipping policy (`None` defers
/// to the ambient [`SkipPolicy::resolve`]).
///
/// # Errors
///
/// See [`verify_cell`].
pub fn verify_cell_with(
    cell: &CellSpec,
    flat_bound: Option<f64>,
    skip: Option<SkipPolicy>,
) -> Result<CellVerdict, String> {
    let workload = workloads::by_name_seeded(&cell.workload, data_seed(cell))
        .ok_or_else(|| format!("unknown workload `{}`", cell.workload))?;
    verify_workload_with(&workload, cell, flat_bound, skip)
}

/// Verifies one (workload, cell) pair; the workload may be synthetic
/// (the fuzzer's cases are not in the catalog).
///
/// # Errors
///
/// See [`verify_cell`].
pub fn verify_workload(
    workload: &Workload,
    cell: &CellSpec,
    flat_bound: Option<f64>,
) -> Result<CellVerdict, String> {
    verify_workload_with(workload, cell, flat_bound, None)
}

/// [`verify_workload`] with an explicit cycle-skipping policy.
///
/// # Errors
///
/// See [`verify_cell`].
pub fn verify_workload_with(
    workload: &Workload,
    cell: &CellSpec,
    flat_bound: Option<f64>,
    skip: Option<SkipPolicy>,
) -> Result<CellVerdict, String> {
    if cell.arch == CounterArch::Stock {
        return Err(
            "stock counters OR concurrent events and cannot support TMA; \
             verify sweeps scalar/add-wires/distributed (use `counters` to see the undercount)"
                .to_string(),
        );
    }
    let stream = workload
        .execute()
        .map_err(|e| format!("architectural execution failed: {e}"))?;
    match cell.core {
        CoreSelect::Rocket => {
            let mut core = Rocket::new(RocketConfig::default(), stream);
            verify_run(&mut core, cell, flat_bound, skip)
        }
        CoreSelect::Boom(size) => {
            let mut core = Boom::new(BoomConfig::for_size(size), stream, workload.program_arc());
            verify_run(&mut core, cell, flat_bound, skip)
        }
        CoreSelect::Soc(mix) => Err(format!(
            "multi-core cells ({mix}) verify through the PDES engine differential \
             (`verify --pdes`), not the per-core counter-vs-trace differential"
        )),
    }
}

fn verify_run(
    core: &mut dyn EventCore,
    cell: &CellSpec,
    flat_bound: Option<f64>,
    skip: Option<SkipPolicy>,
) -> Result<CellVerdict, String> {
    let width = core.commit_width();
    let issue_width = core.issue_width();

    // Slot-TMA channels plus the scalar signals the Table VI overlap
    // analysis needs.
    let mut channels = SlotTemporalTma::required_channels(width);
    channels.push(TraceChannel::scalar(EventId::ICacheMiss));
    channels.push(TraceChannel::scalar(EventId::FetchBubbles));
    let config = TraceConfig::new(channels).map_err(|e| format!("trace config: {e}"))?;

    let report = Perf::with_options(PerfOptions {
        arch: cell.arch,
        max_cycles: cell.max_cycles,
        trace: Some(config),
        skip: skip.unwrap_or_else(SkipPolicy::resolve),
        ..PerfOptions::default()
    })
    .run(core)
    .map_err(|e| format!("measurement failed: {e}"))?;

    let trace = report.trace.as_ref().expect("trace was requested");
    let slot_tma = SlotTemporalTma::for_trace(trace, width)
        .ok_or_else(|| "trace is missing slot-TMA channels".to_string())?;
    let temporal = slot_tma.analyze(trace);

    // The same model selection Perf::run applies.
    let model = if width == 1 {
        icicle_tma::TmaModel::rocket()
    } else {
        icicle_tma::TmaModel::boom(width)
    };
    let derivation = BoundDerivation::measure(
        trace,
        width,
        &report.hw_counts,
        model,
        cell.arch,
        issue_width,
    )
    .ok_or_else(|| "trace is missing bound-derivation channels".to_string())?;
    let bound = match flat_bound {
        Some(fraction) => DivergenceBound::flat(fraction),
        None => derivation.bound(),
    };

    let verdict = CellVerdict {
        cell: cell.clone(),
        cycles: report.cycles,
        slots: temporal.slots,
        classes: readings(&report.tma.top, &temporal, &bound),
        derivation,
    };
    icicle_obs::event_with(icicle_obs::Level::Debug, "verify.divergence", || {
        let worst = verdict.worst();
        vec![
            ("cell", verdict.cell.label().into()),
            ("passed", verdict.passed().into()),
            ("worst_class", worst.name.into()),
            ("worst_divergence", worst.divergence().into()),
            ("worst_bound", worst.bound.into()),
        ]
    });
    Ok(verdict)
}

fn readings(
    counter: &TopLevel,
    temporal: &SlotReport,
    bound: &DivergenceBound,
) -> [ClassReading; 4] {
    [
        ClassReading {
            name: CLASS_NAMES[0],
            counter: counter.retiring,
            temporal: temporal.retiring_fraction(),
            bound: bound.retiring,
        },
        ClassReading {
            name: CLASS_NAMES[1],
            counter: counter.bad_speculation,
            temporal: temporal.bad_speculation_fraction(),
            bound: bound.bad_speculation,
        },
        ClassReading {
            name: CLASS_NAMES[2],
            counter: counter.frontend,
            temporal: temporal.frontend_fraction(),
            bound: bound.frontend,
        },
        ClassReading {
            name: CLASS_NAMES[3],
            counter: counter.backend,
            temporal: temporal.backend_fraction(),
            bound: bound.backend,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use icicle_boom::BoomSize;

    fn cell(workload: &str, core: CoreSelect, arch: CounterArch) -> CellSpec {
        CellSpec {
            workload: workload.to_string(),
            core,
            arch,
            seed: 0,
            repeat: 0,
            max_cycles: 10_000_000,
        }
    }

    #[test]
    fn rocket_cell_verifies_within_derived_bound() {
        let v = cell("vvadd", CoreSelect::Rocket, CounterArch::AddWires);
        let verdict = verify_cell(&v, None).unwrap();
        assert!(verdict.passed(), "worst {:?}", verdict.worst());
        // Retiring is structurally identical on exact counters.
        assert!(verdict.classes[0].divergence() < 1e-9);
        assert_eq!(verdict.slots, verdict.cycles);
    }

    #[test]
    fn boom_cell_verifies_within_derived_bound() {
        let v = cell(
            "qsort",
            CoreSelect::Boom(BoomSize::Large),
            CounterArch::AddWires,
        );
        let verdict = verify_cell(&v, None).unwrap();
        assert!(verdict.passed(), "worst {:?}", verdict.worst());
        // Superscalar: several slots per cycle, an exact multiple.
        assert!(verdict.slots > verdict.cycles);
        assert_eq!(verdict.slots % verdict.cycles, 0);
    }

    #[test]
    fn distributed_counters_widen_but_respect_the_bound() {
        let v = cell(
            "rsort",
            CoreSelect::Boom(BoomSize::Medium),
            CounterArch::Distributed,
        );
        let verdict = verify_cell(&v, None).unwrap();
        assert!(verdict.derivation.quantization > 0.0);
        assert!(verdict.passed(), "worst {:?}", verdict.worst());
    }

    #[test]
    fn stock_counters_are_rejected() {
        let v = cell("vvadd", CoreSelect::Rocket, CounterArch::Stock);
        let err = verify_cell(&v, None).unwrap_err();
        assert!(err.contains("stock"), "{err}");
    }

    #[test]
    fn an_absurdly_tight_flat_bound_fails() {
        let v = cell(
            "qsort",
            CoreSelect::Boom(BoomSize::Small),
            CounterArch::AddWires,
        );
        let verdict = verify_cell(&v, Some(1e-12)).unwrap();
        assert!(!verdict.passed());
        assert!(verdict.worst_ratio() > 1.0);
    }

    #[test]
    fn unknown_workloads_error_cleanly() {
        let v = cell(
            "no-such-workload",
            CoreSelect::Rocket,
            CounterArch::AddWires,
        );
        assert!(verify_cell(&v, None)
            .unwrap_err()
            .contains("unknown workload"));
    }
}
