//! # icicle-perf
//!
//! The perf-like software harness of §IV-D: programs the HPM counters
//! through the CSR file's four-step M-mode sequence, drives a core to
//! completion, reads the counters back, and applies the TMA model — one
//! call stands in for the paper's FireMarshal/OpenSBI wrapper plus
//! `tma_tool`.
//!
//! ```no_run
//! use icicle_boom::{Boom, BoomConfig};
//! use icicle_perf::Perf;
//! use icicle_workloads::micro;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = micro::mergesort(1 << 10);
//! let mut core = Boom::new(BoomConfig::large(), w.execute()?, w.program().clone());
//! let report = Perf::new().run(&mut core)?;
//! println!("{report}");
//! println!("dominant: {:?}", report.tma.top.dominant());
//! # Ok(())
//! # }
//! ```

mod error;
mod profile;
mod report;
mod session;

pub use error::PerfError;
pub use profile::{Profile, ProfileEntry, Profiler};
pub use report::PerfReport;
pub use session::{MultiplexOptions, Perf, PerfOptions, SkipPolicy};
