//! `icicle-tma` — the reproduction's equivalent of the paper's
//! `tma_tool`: run a workload on a core, read the counters, and print
//! TMA results, traces, lane statistics, or physical-design estimates.
//!
//! ```text
//! icicle-tma list
//! icicle-tma tma --core large-boom --workload qsort
//! icicle-tma tma --core rocket --workload 505.mcf_r --arch distributed
//! icicle-tma trace --core large-boom --workload mergesort --window 80
//! icicle-tma lanes --workload 525.x264_r
//! icicle-tma vlsi
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::FAILURE
        }
    }
}
