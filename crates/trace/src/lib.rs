//! # icicle-trace
//!
//! Icicle's out-of-band microarchitectural tracing (§IV-C) and the
//! temporal-TMA analyses built on it (§V-B).
//!
//! The paper extends FireSim's TracerV bridge to stream hand-picked
//! per-cycle event *signals* — not instruction data — over PCIe; a trace
//! analyzer with a matching bit-to-signal type definition interprets the
//! raw binary. This crate reproduces that stack in-process:
//!
//! * [`TraceConfig`] — the "TraceBundle": an ordered list of
//!   [`TraceChannel`]s (an event, optionally a single lane), at most 64,
//!   each mapped to one bit;
//! * [`Trace`] — one 64-bit word per simulated cycle, recorded from the
//!   core's [`EventVector`] every cycle;
//! * analyses: contiguous signal [`windows`](Trace::windows),
//!   [run-length CDFs](Cdf) (Fig. 8b's recovery-length study), the
//!   [`OverlapAnalysis`] rolling-window bound on class overlap (Table VI),
//!   and a cycle-by-cycle [`TemporalTma`] classification.
//!
//! ```
//! use icicle_events::{EventId, EventVector};
//! use icicle_trace::{Trace, TraceChannel, TraceConfig};
//!
//! let config = TraceConfig::new(vec![
//!     TraceChannel::scalar(EventId::ICacheMiss),
//!     TraceChannel::scalar(EventId::Recovering),
//! ]).unwrap();
//! let mut trace = Trace::new(config);
//!
//! let mut v = EventVector::new();
//! v.raise(EventId::ICacheMiss);
//! trace.record(&v);
//! assert!(trace.is_high(0, 0));
//! assert!(!trace.is_high(1, 0));
//! ```
//!
//! [`EventVector`]: icicle_events::EventVector

mod analysis;
mod cdf;
mod export;
mod slots;
mod trace;

pub use analysis::{OverlapAnalysis, OverlapReport, TemporalClass, TemporalReport, TemporalTma};
pub use cdf::Cdf;
pub use slots::{SlotClass, SlotReport, SlotTemporalTma};
pub use trace::{Trace, TraceChannel, TraceConfig, TraceError, Window};
