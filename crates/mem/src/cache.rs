//! Set-associative cache tag arrays with true-LRU replacement.

use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Cycles from request to data on a hit.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The paper's L1 configuration: 32 KiB, 8-way, 64 B blocks.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            block_bytes: 64,
            hit_latency: 1,
        }
    }

    /// The paper's L2 configuration: 512 KiB, 8-way, 64 B blocks.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
            block_bytes: 64,
            hit_latency: 14,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways or block size, or a
    /// capacity smaller than one way of blocks).
    pub fn num_sets(&self) -> u64 {
        assert!(self.ways > 0 && self.block_bytes > 0, "degenerate geometry");
        let sets = self.size_bytes / (self.ways as u64 * self.block_bytes);
        assert!(sets > 0, "capacity smaller than one way of blocks");
        sets
    }
}

/// Hit/miss/writeback counts for one cache.
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Dirty evictions (the `D$-release` event source).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio, or 0.0 with no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last use, for true LRU.
    last_use: u64,
}

/// A set-associative tag array.
///
/// The cache models *presence*, not data: the interpreter already computed
/// architectural values, so the timing model only needs hits, misses,
/// fills, and dirty evictions.
#[derive(Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    num_sets: u64,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let num_sets = config.num_sets();
        Cache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_use: 0,
                };
                (num_sets * config.ways as u64) as usize
            ],
            num_sets,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr / self.config.block_bytes
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let set = (block % self.num_sets) as usize;
        let ways = self.config.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Probes for `addr`; on a hit updates LRU state and the dirty bit.
    ///
    /// Returns whether the access hit. Misses do **not** fill the line;
    /// call [`fill`](Self::fill) when the refill completes so multi-level
    /// interactions model correctly.
    pub fn access(&mut self, addr: u64, is_store: bool) -> bool {
        self.stamp += 1;
        let block = self.block_of(addr);
        let tag = block / self.num_sets;
        let range = self.set_range(block);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.last_use = self.stamp;
                line.dirty |= is_store;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probes without perturbing LRU, dirty bits, or statistics.
    pub fn peek(&self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let tag = block / self.num_sets;
        self.lines[self.set_range(block)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Installs the block containing `addr`, evicting the LRU way.
    ///
    /// Returns the evicted block's base address if the victim was dirty
    /// (a writeback / `D$-release`).
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        self.stamp += 1;
        let block = self.block_of(addr);
        let tag = block / self.num_sets;
        let set_base = (block % self.num_sets) * self.config.ways as u64;
        let range = self.set_range(block);

        // Already present (e.g. racing prefetch): just refresh.
        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.last_use = self.stamp;
            line.dirty |= dirty;
            return None;
        }

        let (victim_idx, _) = self.lines[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.last_use } else { 0 })
            .expect("non-zero associativity");
        let victim = &mut self.lines[range.start + victim_idx];
        let evicted = (victim.valid && victim.dirty).then(|| {
            let way_in_set = victim_idx as u64;
            let set = set_base / self.config.ways as u64;
            let _ = way_in_set;
            (victim.tag * self.num_sets + set) * self.config.block_bytes
        });
        if evicted.is_some() {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            last_use: self.stamp,
        };
        evicted
    }

    /// Invalidates every line (models `fence.i` on the I-side).
    pub fn flush_all(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            block_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn default_geometries_match_paper() {
        assert_eq!(CacheConfig::l1_default().num_sets(), 64);
        assert_eq!(CacheConfig::l2_default().num_sets(), 1024);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        c.fill(0x100, false);
        assert!(c.access(0x100, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three blocks mapping to set 0 (block % 2 == 0): 0x000, 0x100, 0x200.
        c.fill(0x000, false);
        c.fill(0x100, false);
        c.access(0x000, false); // refresh 0x000; 0x100 is now LRU
        c.fill(0x200, false);
        assert!(c.peek(0x000));
        assert!(!c.peek(0x100));
        assert!(c.peek(0x200));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.access(0x000, true); // make dirty
        c.fill(0x100, false);
        let evicted = c.fill(0x200, false); // evicts dirty 0x000
        assert_eq!(evicted, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_reports_nothing() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.fill(0x100, false);
        assert_eq!(c.fill(0x200, false), None);
    }

    #[test]
    fn fill_of_present_block_is_idempotent() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.fill(0x100, false);
        assert_eq!(c.fill(0x000, false), None);
        assert!(c.peek(0x000));
        assert!(c.peek(0x100));
    }

    #[test]
    fn peek_does_not_disturb_state() {
        let mut c = tiny();
        c.fill(0x000, false);
        let before = c.stats();
        assert!(c.peek(0x000));
        assert!(!c.peek(0x040));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn flush_all_invalidates() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.flush_all();
        assert!(!c.peek(0x000));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny();
        // 8 distinct blocks > 4-line capacity.
        for round in 0..4 {
            for b in 0..8u64 {
                let addr = b * 64;
                if !c.access(addr, false) {
                    c.fill(addr, false);
                }
            }
            let _ = round;
        }
        assert!(c.stats().misses > c.stats().hits);
    }
}
