//! Golden-snapshot comparison.
//!
//! A snapshot is the canonical rendering of a matrix's TMA breakdowns
//! ([`MatrixReport::snapshot`](crate::MatrixReport::snapshot)) written
//! under `tests/golden/`. Comparison is byte-for-byte: the JSON emitter
//! is canonical (fixed float precision, insertion-ordered keys) and the
//! matrix aggregates in grid order, so a mismatch is a real behavioral
//! change, never thread-count noise. Set `ICICLE_UPDATE_GOLDEN=1` to
//! regenerate snapshots instead of comparing.

use std::fs;
use std::path::Path;

/// The environment variable that switches comparison to regeneration.
pub const UPDATE_ENV: &str = "ICICLE_UPDATE_GOLDEN";

/// What a snapshot check did.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum GoldenOutcome {
    /// The snapshot existed and matched byte-for-byte.
    Matched,
    /// `ICICLE_UPDATE_GOLDEN=1`: the snapshot was (re)written.
    Updated,
}

/// Whether the regeneration path is active.
pub fn update_requested() -> bool {
    std::env::var(UPDATE_ENV).is_ok_and(|v| v == "1")
}

/// Compares `rendered` against the snapshot at `path`, or regenerates it
/// when [`update_requested`].
///
/// # Errors
///
/// Returns a description of the first differing line, a missing
/// snapshot (with the regeneration hint), or an I/O failure.
pub fn compare_or_update(path: &Path, rendered: &str) -> Result<GoldenOutcome, String> {
    if update_requested() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
        // Write-then-rename so a crashed update never leaves a torn
        // snapshot for the next comparison.
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, rendered).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        fs::rename(&tmp, path).map_err(|e| format!("renaming into {}: {e}", path.display()))?;
        return Ok(GoldenOutcome::Updated);
    }
    let expected = fs::read_to_string(path).map_err(|e| {
        format!(
            "missing or unreadable golden snapshot {}: {e}\n\
             (run once with {UPDATE_ENV}=1 to generate it)",
            path.display()
        )
    })?;
    if expected == rendered {
        return Ok(GoldenOutcome::Matched);
    }
    Err(first_difference(path, &expected, rendered))
}

fn first_difference(path: &Path, expected: &str, actual: &str) -> String {
    let mut expected_lines = expected.lines();
    let mut actual_lines = actual.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (expected_lines.next(), actual_lines.next()) {
            (Some(e), Some(a)) if e == a => continue,
            (Some(e), Some(a)) => {
                return format!(
                    "golden snapshot {} differs at line {lineno}:\n\
                       expected: {e}\n\
                       actual:   {a}\n\
                     (re-run with {UPDATE_ENV}=1 if the change is intentional)",
                    path.display()
                );
            }
            (Some(e), None) => {
                return format!(
                    "golden snapshot {} differs at line {lineno}: \
                     actual output ends early (expected: {e})",
                    path.display()
                );
            }
            (None, Some(a)) => {
                return format!(
                    "golden snapshot {} differs at line {lineno}: \
                     actual output has extra content ({a})",
                    path.display()
                );
            }
            (None, None) => {
                // Same lines but different bytes (trailing newline or
                // line endings).
                return format!(
                    "golden snapshot {} differs only in trailing whitespace or line endings",
                    path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "icicle-golden-test-{tag}-{}.json",
            std::process::id()
        ))
    }

    #[test]
    fn matching_snapshots_pass() {
        let path = tmpfile("match");
        fs::write(&path, "{\n  \"x\": 1\n}\n").unwrap();
        assert_eq!(
            compare_or_update(&path, "{\n  \"x\": 1\n}\n"),
            Ok(GoldenOutcome::Matched)
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn differing_snapshots_report_the_first_line() {
        let path = tmpfile("diff");
        fs::write(&path, "line one\nline two\n").unwrap();
        let err = compare_or_update(&path, "line one\nline 2!\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("line two"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshots_mention_the_update_path() {
        let path = tmpfile("missing-never-created");
        let err = compare_or_update(&path, "anything").unwrap_err();
        assert!(err.contains(UPDATE_ENV), "{err}");
    }

    #[test]
    fn length_mismatches_are_reported() {
        let path = tmpfile("short");
        fs::write(&path, "a\nb\n").unwrap();
        let err = compare_or_update(&path, "a\n").unwrap_err();
        assert!(err.contains("ends early"), "{err}");
        fs::remove_file(&path).ok();
    }
}
