//! The content-addressed result cache.
//!
//! Two tiers share one key space (the cell [`Fingerprint`]):
//!
//! * an in-memory map, always on, shared across the worker pool;
//! * an optional on-disk tier under a cache directory, laid out as
//!   `<dir>/<first two hex digits>/<16-hex-digit fingerprint>.json`
//!   (fan-out keeps directories small on big sweeps).
//!
//! Disk writes go through a temp file + rename, so a crashed or killed
//! campaign never leaves a half-written entry that would poison later
//! runs; unparsable entries are treated as misses and overwritten.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::report::CellResult;
use crate::sync::lock_unpoisoned;

/// A two-tier (memory + optional disk) result cache, safe to share
/// across worker threads.
#[derive(Debug, Default)]
pub struct ResultCache {
    memory: Mutex<HashMap<u64, CellResult>>,
    disk: Option<PathBuf>,
    quarantined: AtomicUsize,
}

impl ResultCache {
    /// A memory-only cache (used for `--no-cache` runs, which still
    /// dedupe identical cells within one campaign).
    pub fn in_memory() -> ResultCache {
        ResultCache::default()
    }

    /// A cache backed by `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn with_disk(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            memory: Mutex::new(HashMap::new()),
            disk: Some(dir),
            quarantined: AtomicUsize::new(0),
        })
    }

    /// The on-disk location of `fp`, if this cache has a disk tier.
    pub fn entry_path(&self, fp: Fingerprint) -> Option<PathBuf> {
        let hex = fp.hex();
        self.disk
            .as_ref()
            .map(|dir| dir.join(&hex[..2]).join(format!("{hex}.json")))
    }

    /// Looks `fp` up, promoting disk hits into the memory tier.
    ///
    /// A disk entry that fails to parse is quarantined (renamed to
    /// `<entry>.corrupt`) and treated as a miss: the cell re-simulates
    /// and the next [`ResultCache::put`] writes a fresh entry, while
    /// the corrupt bytes stay around for a post-mortem.
    pub fn get(&self, fp: Fingerprint) -> Option<CellResult> {
        if let Some(hit) = lock_unpoisoned(&self.memory).get(&fp.0) {
            return Some(hit.clone());
        }
        let path = self.entry_path(fp)?;
        let text = fs::read_to_string(&path).ok()?;
        let result = match Json::parse(&text)
            .ok()
            .and_then(|parsed| CellResult::from_json(&parsed).ok())
        {
            Some(result) => result,
            None => {
                let _ = fs::rename(&path, path.with_extension("json.corrupt"));
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        lock_unpoisoned(&self.memory).insert(fp.0, result.clone());
        Some(result)
    }

    /// Corrupt disk entries quarantined by this handle so far.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Stores a result under `fp` in both tiers.
    ///
    /// Disk failures are swallowed: a cache that cannot persist only
    /// costs future runs a re-simulation, it must not fail this one.
    pub fn put(&self, fp: Fingerprint, result: &CellResult) {
        lock_unpoisoned(&self.memory).insert(fp.0, result.clone());
        if let Some(path) = self.entry_path(fp) {
            let _ = write_atomically(&path, &(result.to_json().render() + "\n"));
        }
    }

    /// Number of entries in the memory tier.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.memory).len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn write_atomically(path: &Path, contents: &str) -> io::Result<()> {
    let parent = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "entry path has no parent"))?;
    fs::create_dir_all(parent)?;
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TmaSummary;
    use crate::spec::{CellSpec, CoreSelect};
    use icicle_pmu::CounterArch;

    fn sample(seed: u64) -> CellResult {
        CellResult {
            cell: CellSpec {
                workload: "qsort".into(),
                core: CoreSelect::Rocket,
                arch: CounterArch::AddWires,
                seed,
                repeat: 0,
                max_cycles: 1_000_000,
            },
            cycles: 123,
            instret: 99,
            // Exact at the serialized {:.6} precision, so disk
            // round-trips compare equal structurally.
            ipc: 0.75,
            tma: TmaSummary::default(),
            counters: vec![("cycles".into(), 123)],
            from_cache: false,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("icicle-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_round_trips() {
        let cache = ResultCache::in_memory();
        let fp = Fingerprint(0xabcd);
        assert!(cache.get(fp).is_none());
        cache.put(fp, &sample(1));
        assert_eq!(cache.get(fp), Some(sample(1)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache_handle() {
        let dir = tmpdir("disk");
        let fp = Fingerprint(0x1234_5678_9abc_def0);
        {
            let cache = ResultCache::with_disk(&dir).unwrap();
            cache.put(fp, &sample(7));
        }
        // A brand-new handle (fresh memory tier) must hit via disk.
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.get(fp), Some(sample(7)));
        // Fan-out layout: <dir>/12/1234…json
        let path = cache.entry_path(fp).unwrap();
        assert!(path.starts_with(dir.join("12")), "{path:?}");
        assert!(path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_read_as_misses_and_heal_on_put() {
        let dir = tmpdir("truncated");
        let fp = Fingerprint(0xbeef);
        let cache = ResultCache::with_disk(&dir).unwrap();
        cache.put(fp, &sample(5));
        // A crash mid-write outside the atomic path (or disk-full
        // truncation) leaves a prefix of a valid entry.
        let path = cache.entry_path(fp).unwrap();
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(fp).is_none(), "truncated entry must be a miss");
        fresh.put(fp, &sample(5));
        let again = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(again.get(fp), Some(sample(5)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn well_formed_json_of_the_wrong_shape_is_a_miss() {
        let dir = tmpdir("shape");
        let fp = Fingerprint(0xf00d);
        let cache = ResultCache::with_disk(&dir).unwrap();
        let path = cache.entry_path(fp).unwrap();
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        // Parses fine, but carries none of the cell-result fields.
        fs::write(&path, "{\n  \"fingerprint\": \"bogus\"\n}\n").unwrap();
        assert!(cache.get(fp).is_none());
        cache.put(fp, &sample(11));
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(fresh.get(fp), Some(sample(11)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_tmp_files_from_a_killed_writer_are_ignored_and_replaced() {
        let dir = tmpdir("tmpfile");
        let fp = Fingerprint(0xdead);
        let cache = ResultCache::with_disk(&dir).unwrap();
        let path = cache.entry_path(fp).unwrap();
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        // A writer killed between write and rename leaves only the temp
        // file; the entry itself must read as a miss.
        let tmp = path.with_extension("json.tmp");
        let partial = sample(9).to_json().render();
        fs::write(&tmp, &partial[..partial.len() / 3]).unwrap();
        assert!(cache.get(fp).is_none());
        // A later put claims the same temp name and completes the
        // rename, leaving no debris behind.
        cache.put(fp, &sample(9));
        assert!(path.exists());
        assert!(!tmp.exists(), "put must rename the temp file away");
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(fresh.get(fp), Some(sample(9)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses_and_heal_on_put() {
        let dir = tmpdir("corrupt");
        let fp = Fingerprint(0xfeed);
        let cache = ResultCache::with_disk(&dir).unwrap();
        let path = cache.entry_path(fp).unwrap();
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "{ not json").unwrap();
        assert!(cache.get(fp).is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(
            path.with_extension("json.corrupt").exists(),
            "corrupt bytes kept for post-mortem"
        );
        assert!(!path.exists(), "corrupt entry moved out of the way");
        cache.put(fp, &sample(3));
        // Re-read through a fresh handle to force the disk path.
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(fresh.get(fp), Some(sample(3)));
        let _ = fs::remove_dir_all(&dir);
    }
}
