//! Conservative-PDES links between cores and the shared L2.
//!
//! The lockstep SoC steps cores one cycle at a time in core order, so
//! requests reach the [`SharedL2`] in a canonical order: ascending cycle,
//! then ascending core index, then program order within a core's cycle.
//! This module lets each core run on its *own* thread while reproducing
//! exactly that order, so shared-L2 state (bus `next_free`, fill/evict
//! sequence, contention tallies) — and therefore every counter and TMA
//! report — is byte-identical to the lockstep reference at any thread
//! count.
//!
//! The protocol is classic conservative parallel discrete-event
//! simulation (null messages in the Chandy–Misra–Bryant style):
//!
//! * Every core owns an [`L2Port`] carrying a monotone **safe horizon**
//!   `h`: a promise that the port will never issue an L2 request at any
//!   cycle `< h`. A port publishes `advance(t + lookahead)` before
//!   stepping cycle `t`, where the lookahead is the core's quiescent
//!   span ([`time_until_next_event`]) — a core sleeping out an L2 miss
//!   promises silence for the remaining miss latency, which is how the
//!   hit/miss latency becomes the protocol's lookahead. A published
//!   horizon with no accompanying request is precisely a null message.
//! * A request at cycle `t` from port `i` is **safe** — may touch the
//!   shared cache — once every other unfinished port `j` satisfies
//!   `h_j > t`, or `h_j == t && j > i` (the index tie-break reproduces
//!   the lockstep core order within one cycle). The globally minimum
//!   `(cycle, index)` requester is always safe, so the protocol cannot
//!   deadlock; everyone else spins (releasing its scheduler slot via
//!   [`L2Waiter`]) until its predecessors pass it.
//!
//! [`time_until_next_event`]: https://docs.rs/icicle-events
//! Determinism rests on one precondition the core models already meet:
//! every hierarchy call passes the core's own current cycle as `now`,
//! and requests within one core-cycle happen in program order on the
//! core's thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::shared::SharedL2;

/// A finished port never issues again; its horizon parks at infinity.
const HORIZON_DONE: u64 = u64::MAX;

/// Lets a port blocked in [`L2Port::access`] hand its scheduler slot to
/// another core while it waits.
///
/// When the SoC runs more cores than worker permits, a blocked port must
/// not camp on a permit: the port whose request is globally minimum may
/// be the one waiting for a slot. `pause` is called once before the wait
/// loop, `resume` once after; implementations release and reacquire one
/// execution permit. Waiting affects only the wall clock — the order in
/// which requests reach the L2 is fixed by the horizon protocol.
pub trait L2Waiter: Send + Sync {
    /// Releases the caller's execution permit for the duration of a wait.
    fn pause(&self);
    /// Reacquires an execution permit; may block.
    fn resume(&self);
}

#[derive(Debug)]
struct PortState {
    /// This port promises no L2 request at any cycle `< horizon`.
    horizon: AtomicU64,
    /// Null messages published ([`L2Port::advance`] calls).
    nulls: AtomicU64,
    /// Stall episodes: `access` calls that found the predicate unsafe.
    stall_waits: AtomicU64,
    /// Spin-loop iterations spent inside stall episodes.
    stall_spins: AtomicU64,
    /// Wall-clock microseconds spent inside stall episodes.
    stall_us: AtomicU64,
}

/// A plain snapshot of one port's protocol-health tallies. The numbers
/// are wall-clock/load dependent (except `null_messages`, which is
/// fixed by the drive loop) — consumers must treat them as volatile.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct L2PortStats {
    /// Horizon publications (one per drive-loop iteration).
    pub null_messages: u64,
    /// `access` calls that had to wait for a predecessor.
    pub stall_waits: u64,
    /// Spin iterations accumulated across those waits.
    pub stall_spins: u64,
    /// Wall-clock microseconds spent waiting.
    pub stall_us: u64,
}

/// Creates the timestamped per-core ports in front of one [`SharedL2`].
///
/// The arbiter itself is just the factory; arbitration is distributed —
/// each port admits its own request once the horizon predicate proves it
/// is globally next. [`SharedL2`]'s internal lock then makes the access
/// atomic, so requests execute in exactly the lockstep order.
pub struct L2Arbiter;

impl L2Arbiter {
    /// Builds one linked port per core, all in front of `shared`.
    pub fn link(shared: SharedL2, cores: usize) -> Vec<L2Port> {
        let states: Arc<[PortState]> = (0..cores)
            .map(|_| PortState {
                horizon: AtomicU64::new(0),
                nulls: AtomicU64::new(0),
                stall_waits: AtomicU64::new(0),
                stall_spins: AtomicU64::new(0),
                stall_us: AtomicU64::new(0),
            })
            .collect();
        (0..cores)
            .map(|index| L2Port {
                index,
                states: states.clone(),
                shared: shared.clone(),
                waiter: None,
            })
            .collect()
    }
}

/// One core's timestamped message link to the shared L2.
#[derive(Clone)]
pub struct L2Port {
    index: usize,
    states: Arc<[PortState]>,
    shared: SharedL2,
    waiter: Option<Arc<dyn L2Waiter>>,
}

impl std::fmt::Debug for L2Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("L2Port")
            .field("index", &self.index)
            .field(
                "horizon",
                &self.states[self.index].horizon.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl L2Port {
    /// This port's core index (the lockstep tie-break rank).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Attaches the scheduler hook used while blocked in [`access`].
    ///
    /// [`access`]: L2Port::access
    pub fn with_waiter(mut self, waiter: Arc<dyn L2Waiter>) -> L2Port {
        self.waiter = Some(waiter);
        self
    }

    /// Publishes a null message: this port will issue no request at any
    /// cycle `< horizon`. Monotone (`fetch_max`), so stale re-publishes
    /// are harmless.
    pub fn advance(&self, horizon: u64) {
        let state = &self.states[self.index];
        state.horizon.fetch_max(horizon, Ordering::Release);
        state.nulls.fetch_add(1, Ordering::Relaxed);
    }

    /// This port's protocol-health tallies so far.
    pub fn stats(&self) -> L2PortStats {
        let state = &self.states[self.index];
        L2PortStats {
            null_messages: state.nulls.load(Ordering::Relaxed),
            stall_waits: state.stall_waits.load(Ordering::Relaxed),
            stall_spins: state.stall_spins.load(Ordering::Relaxed),
            stall_us: state.stall_us.load(Ordering::Relaxed),
        }
    }

    /// Marks this port permanently silent (core finished or stopped).
    pub fn finish(&self) {
        self.states[self.index]
            .horizon
            .store(HORIZON_DONE, Ordering::Release);
    }

    /// Whether a request at cycle `now` is globally next in the
    /// canonical (cycle, core index) order.
    fn is_safe(&self, now: u64) -> bool {
        self.states.iter().enumerate().all(|(j, s)| {
            if j == self.index {
                return true;
            }
            let h = s.horizon.load(Ordering::Acquire);
            h > now || (h == now && j > self.index)
        })
    }

    /// Performs a timed shared-L2 access on behalf of this port's core,
    /// blocking until the request is safe to admit.
    ///
    /// Returns `(hit, extra_latency)` exactly like the underlying
    /// shared cache. The wait is pure wall clock; simulated time and
    /// all cache state evolve identically to the lockstep reference.
    pub fn access(&self, addr: u64, now: u64) -> (bool, u64) {
        let own = self.states[self.index].horizon.load(Ordering::Relaxed);
        assert!(
            own <= now,
            "L2 port {} broke its null-message promise: horizon {own} but \
             requested at cycle {now} (unsound lookahead)",
            self.index
        );
        if !self.is_safe(now) {
            let state = &self.states[self.index];
            state.stall_waits.fetch_add(1, Ordering::Relaxed);
            let stalled_at = std::time::Instant::now();
            if let Some(w) = &self.waiter {
                w.pause();
            }
            let mut spins = 0u32;
            while !self.is_safe(now) {
                // Single-vCPU friendly: brief spin, then yield, then an
                // escalating micro-sleep. Only latency is at stake; the
                // admission order is fixed by the predicate.
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else if spins < 1024 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
            if let Some(w) = &self.waiter {
                w.resume();
            }
            state
                .stall_spins
                .fetch_add(u64::from(spins), Ordering::Relaxed);
            state
                .stall_us
                .fetch_add(stalled_at.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
        self.shared.access(addr, now)
    }
}

/// A component whose shared-L2 traffic can be rerouted through an
/// [`L2Port`] — implemented by [`MemoryHierarchy`] and forwarded by the
/// core models, so an SoC can link every core before spawning workers.
///
/// [`MemoryHierarchy`]: crate::MemoryHierarchy
pub trait L2Linked {
    /// Routes subsequent shared-L2 accesses through `port`.
    fn attach_l2_port(&mut self, port: L2Port);
    /// Restores direct (lockstep) shared-L2 access.
    fn detach_l2_port(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;

    fn ports(n: usize) -> Vec<L2Port> {
        L2Arbiter::link(SharedL2::new(CacheConfig::l2_default(), 2), n)
    }

    #[test]
    fn lone_port_is_always_safe() {
        let p = &ports(1)[0];
        assert!(p.is_safe(0));
        assert!(p.is_safe(1_000_000));
    }

    #[test]
    fn lower_index_wins_the_same_cycle() {
        let ps = ports(2);
        // Both at cycle 0: port 0 may go, port 1 must wait for it.
        assert!(ps[0].is_safe(0));
        assert!(!ps[1].is_safe(0));
        // Port 0 passes cycle 0; port 1 becomes safe.
        ps[0].advance(1);
        assert!(ps[1].is_safe(0));
    }

    #[test]
    fn earlier_cycle_wins_regardless_of_index() {
        let ps = ports(2);
        ps[0].advance(10);
        // Port 1 at cycle 3 precedes port 0's earliest possible request.
        assert!(ps[1].is_safe(3));
        // Port 0 at cycle 10 must wait for port 1 to pass cycle 10.
        assert!(!ps[0].is_safe(10));
        ps[1].advance(11);
        assert!(ps[0].is_safe(10));
    }

    #[test]
    fn finished_ports_never_block_anyone() {
        let ps = ports(3);
        ps[1].finish();
        ps[2].finish();
        assert!(ps[0].is_safe(123_456));
    }

    #[test]
    fn horizon_is_monotone() {
        let ps = ports(2);
        ps[0].advance(50);
        ps[0].advance(10); // stale null message: no-op
        assert!(!ps[1].is_safe(50), "horizon must still be 50");
        assert!(ps[1].is_safe(49));
    }

    #[test]
    #[should_panic(expected = "null-message promise")]
    fn requesting_before_the_published_horizon_panics() {
        let ps = ports(2);
        ps[0].advance(100);
        ps[0].access(0x4000, 50);
    }

    #[test]
    fn port_stats_count_nulls_and_stalls() {
        let ps = ports(2);
        assert_eq!(ps[0].stats(), L2PortStats::default());
        ps[0].advance(1);
        ps[0].advance(2);
        assert_eq!(ps[0].stats().null_messages, 2);
        assert_eq!(ps[1].stats().null_messages, 0, "stats are per port");
        // Port 1 at cycle 0 must wait for port 0 to pass it; release the
        // blockage from another thread so the stall episode is counted.
        let p0 = ps[0].clone();
        let unblock = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            p0.advance(10);
        });
        let _ = ps[1].access(0x4000, 2);
        unblock.join().unwrap();
        let stats = ps[1].stats();
        assert_eq!(stats.stall_waits, 1);
        assert!(stats.stall_spins > 0);
    }

    #[test]
    fn serialized_accesses_match_direct_shared_access() {
        let shared = SharedL2::new(CacheConfig::l2_default(), 2);
        let direct = SharedL2::new(CacheConfig::l2_default(), 2);
        let ps = L2Arbiter::link(shared.clone(), 2);

        // Canonical order: (cycle 0, port 0), (cycle 0, port 1), ...
        let a = ps[0].access(0x4000, 0);
        ps[0].advance(1);
        let b = ps[1].access(0x8000, 0);
        ps[1].advance(5);
        let c = ps[0].access(0x8000, 1);

        assert_eq!(a, direct.access(0x4000, 0));
        assert_eq!(b, direct.access(0x8000, 0));
        assert_eq!(c, direct.access(0x8000, 1));
        assert_eq!(shared.contention_cycles(), direct.contention_cycles());
    }
}
