//! Top-level TMA for the SPEC CPU2017 intrate proxy suite on LargeBoom —
//! the Fig. 7(g) characterization.
//!
//! ```sh
//! cargo run --release --example spec_tma
//! ```

use icicle::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "ipc", "retiring", "bad-spec", "frontend", "backend"
    );
    for workload in icicle::workloads::spec_intrate_suite() {
        let stream = workload.execute()?;
        let mut core = Boom::new(BoomConfig::large(), stream, workload.program().clone());
        let report = Perf::new().run(&mut core)?;
        println!(
            "{:<18} {:>6.2} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            workload.name(),
            report.ipc(),
            100.0 * report.tma.top.retiring,
            100.0 * report.tma.top.bad_speculation,
            100.0 * report.tma.top.frontend,
            100.0 * report.tma.top.backend,
        );
    }
    Ok(())
}
