//! Design-space scaling study: IPC and TMA across the five Table IV
//! BOOM sizes. Not a paper figure, but the design-space-exploration use
//! case the paper motivates (§I cites BOOM-explorer): reliable
//! characterization across configurations during the design process.

use icicle::prelude::*;
use icicle_bench::boom_report;

fn main() {
    println!("=== BOOM scaling study: IPC across Table IV sizes ===\n");
    let workloads = [
        icicle::workloads::micro::rsort(1 << 10),
        icicle::workloads::micro::mm(20),
        icicle::workloads::micro::qsort(1 << 10),
        icicle::workloads::spec::exchange2(),
        icicle::workloads::spec::mcf_sized(1 << 15, 4_000),
    ];
    print!("{:<18}", "benchmark");
    for size in BoomSize::ALL {
        print!(" {:>8}", size.name());
    }
    println!("   bottleneck that limits scaling");
    for w in &workloads {
        print!("{:<18}", w.name());
        let mut last = None;
        for size in BoomSize::ALL {
            let r = boom_report(w, BoomConfig::for_size(size));
            print!(" {:>8.2}", r.ipc());
            last = Some(r);
        }
        let r = last.expect("at least one size");
        println!(
            "   {} ({:.0}%)",
            r.tma.top.dominant().0,
            100.0 * r.tma.top.dominant().1
        );
    }
    // The ablation the regression motivates: giga with a store-set-style
    // memory dependence predictor.
    let w = icicle::workloads::spec::exchange2();
    let base = boom_report(&w, BoomConfig::giga());
    let mut cfg = BoomConfig::giga();
    cfg.mem_dep_prediction = true;
    let fixed = boom_report(&w, cfg);
    println!(
        "\nmem-dep prediction on giga/exchange2: IPC {:.2} -> {:.2}, \
         machine-clear slots {:.1}% -> {:.1}%",
        base.ipc(),
        fixed.ipc(),
        100.0 * base.tma.bad_spec.machine_clears,
        100.0 * fixed.tma.bad_spec.machine_clears,
    );
    println!(
        "\ncompute-bound kernels (rsort, mm) keep scaling with width; the\n\
         memory-bound chase (mcf) and speculation-bound sort (qsort)\n\
         plateau. exchange2 actually REGRESSES at giga: its swap pattern\n\
         trips memory-ordering machine clears, and deeper speculation\n\
         trips more of them (the TMA Machine Clears class doubles from\n\
         mega to giga) — the classic reason wide cores grow memory\n\
         dependence predictors. TMA names the limiter in every case,\n\
         which is exactly the design-space-exploration feedback loop the\n\
         paper's introduction argues for."
    );
}
