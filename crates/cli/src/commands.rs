//! Command implementations.

use std::error::Error;
use std::io::IsTerminal;
use std::sync::Arc;
use std::time::Instant;

use icicle::events::EventId;
use icicle::prelude::*;

use crate::args::{Command, CoreSelect, USAGE};

type Result<T> = std::result::Result<T, Box<dyn Error>>;

/// Writes the registry snapshot to `path` (atomically, so a reader or a
/// crash never sees a torn file), with the process-wide simulator
/// tallies folded in as `sim.*` counters so one document carries both
/// clock domains' totals. The tallies are settled as the delta since
/// `baseline` — they are cumulative process globals, and adding the
/// running total would double-count everything simulated before this
/// command's own work.
fn write_metrics(
    path: &str,
    registry: &MetricsRegistry,
    baseline: icicle::obs::SimCounts,
) -> Result<()> {
    let delta = icicle::obs::sim_stats().counts().since(baseline);
    registry
        .counter("sim.rocket_cycles")
        .add(delta.rocket_cycles);
    registry.counter("sim.boom_cycles").add(delta.boom_cycles);
    icicle::obs::write_atomic(path, &registry.render())
        .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
    Ok(())
}

/// `1h02m`, `3m09s`, or `42s` — wide enough for campaign ETAs.
fn format_eta(seconds: f64) -> String {
    let s = seconds.max(0.0).round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

/// Executes a parsed command.
///
/// # Errors
///
/// Returns an error for unknown workloads or measurement failures.
pub fn run(cmd: Command) -> Result<()> {
    // One trace per CLI invocation: anything the command emits (spans,
    // events, flight-recorder records) correlates under this id unless
    // a harness below mints its own run-scoped trace.
    let invocation_trace = icicle::obs::TraceId::mint();
    let _scope = icicle::obs::enter(icicle::obs::TraceContext::root(invocation_trace));
    // The flight recorder is always on: bounded per-thread rings that
    // only see harness-granularity emit sites (never the simulator's
    // step loop), so the bench overhead gate holds with it armed.
    icicle::obs::arm_flight_recorder(0);
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List { json } => list(json),
        cmd @ Command::Campaign { .. } => campaign(cmd),
        Command::Faults {
            seed,
            cases,
            demo,
            report,
            json,
        } => faults(seed, cases, demo, report.as_deref(), json),
        Command::Chaos {
            seed,
            cases,
            connections,
            weaken,
            report,
            json,
        } => chaos(
            seed,
            cases,
            connections,
            weaken.as_deref(),
            report.as_deref(),
            json,
        ),
        Command::Tma {
            workload,
            core,
            arch,
            json,
        } => tma(&workload, core, arch, json),
        Command::Disasm { workload } => {
            let w = lookup(&workload)?;
            print!("{}", w.program().disassemble());
            Ok(())
        }
        Command::Trace {
            workload,
            core,
            window,
            start,
        } => trace(&workload, core, window, start),
        Command::TraceExport { cell, out, window } => trace_export(&cell, out.as_deref(), window),
        Command::Lanes { workload, core } => lanes(&workload, core),
        Command::Mix { workload } => {
            let w = lookup(&workload)?;
            let stream = w.execute()?;
            let total = stream.len() as f64;
            println!("{}: {} dynamic instructions", w.name(), stream.len());
            for (class, count) in stream.class_mix() {
                println!(
                    "{:>10?} {:>10} {:>6.1}%",
                    class,
                    count,
                    100.0 * count as f64 / total
                );
            }
            Ok(())
        }
        Command::Profile {
            workload,
            core,
            period,
            event,
        } => profile(&workload, core, period, event),
        Command::Soc { pairs } => soc(&pairs),
        Command::Counters { workload, core } => counters(&workload, core),
        Command::Verify {
            matrix,
            fuzz,
            pdes,
            seed,
            bound,
            jobs,
            report,
            json,
            metrics_out,
        } => verify(
            matrix,
            fuzz,
            pdes,
            seed,
            bound,
            jobs,
            report.as_deref(),
            json,
            metrics_out.as_deref(),
        ),
        Command::Bench {
            json,
            json_path,
            baseline,
            warmup,
            repeats,
            metrics_out,
        } => bench(
            json,
            json_path.as_deref(),
            baseline.as_deref(),
            warmup,
            repeats,
            metrics_out.as_deref(),
        ),
        Command::BenchCompare {
            old,
            new,
            tolerance,
        } => bench_compare(&old, &new, tolerance),
        Command::Vlsi => vlsi(),
        Command::Serve {
            addr,
            data_dir,
            jobs,
            executors,
            capacity,
            per_client,
        } => serve(&addr, &data_dir, jobs, executors, capacity, per_client),
        cmd @ Command::Submit { .. } => submit(cmd),
        Command::Status { addr, id } => status(&addr, id),
        Command::JobResult { addr, id } => job_result(&addr, id),
        Command::Cancel { addr, id } => cancel(&addr, id),
    }
}

/// `serve`: run the analysis server until the process is killed.
fn serve(
    addr: &str,
    data_dir: &str,
    jobs: usize,
    executors: usize,
    capacity: usize,
    per_client: usize,
) -> Result<()> {
    use icicle_serve::{AnalysisService, SchedulerConfig, Server, ServiceConfig};
    let service = Arc::new(
        AnalysisService::open(ServiceConfig {
            data_dir: data_dir.into(),
            jobs,
            executors,
            scheduler: SchedulerConfig {
                capacity,
                per_client,
            },
        })
        .map_err(|e| format!("cannot open data dir `{data_dir}`: {e}"))?,
    );
    let executor_pool = service.start();
    let server = Server::bind(Arc::clone(&service), addr)
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    // SIGTERM (and `POST /v1/shutdown`) trigger the same graceful
    // drain: stop accepting, cancel cooperatively at cell boundaries,
    // flush checkpoints, exit 0 — acknowledged work survives a restart.
    let shutdown = server.shutdown_handle()?;
    watch_sigterm(shutdown);
    // The resolved address goes to stderr (port 0 binds ephemerally);
    // stdout stays clean for scripted consumers.
    eprintln!("icicle-tma serving on {}", server.local_addr()?);
    server.run()?;
    for handle in executor_pool {
        let _ = handle.join();
    }
    service.flush();
    eprintln!("icicle-tma drained cleanly");
    Ok(())
}

/// Translates SIGTERM into a graceful server drain.
///
/// Installed with raw `signal(2)` — the workspace links no signal
/// crate — and kept async-signal-safe by doing nothing in the handler
/// but a store; a watcher thread turns the flag into the actual
/// shutdown trigger (which allocates and takes locks).
#[cfg(unix)]
fn watch_sigterm(shutdown: icicle_serve::ShutdownHandle) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static TERM: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term);
    }
    std::thread::spawn(move || loop {
        if TERM.load(Ordering::SeqCst) {
            eprintln!("icicle-tma caught SIGTERM; draining");
            shutdown.trigger();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
}

#[cfg(not(unix))]
fn watch_sigterm(_shutdown: icicle_serve::ShutdownHandle) {}

/// `submit`: POST a job and print its id, or `--wait` for the result.
fn submit(cmd: Command) -> Result<()> {
    use icicle::obs::Json;
    use icicle_serve::{Client, JobKind, Submission};
    let Command::Submit {
        addr,
        spec,
        verify,
        bench,
        bound,
        warmup,
        repeats,
        priority,
        client,
        wait,
    } = cmd
    else {
        unreachable!("run() dispatches only Submit here");
    };
    let kind = if verify {
        JobKind::Verify { flat_bound: bound }
    } else if bench {
        JobKind::Bench { warmup, repeats }
    } else {
        let path = spec.expect("the parser requires a spec path");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read campaign spec `{path}`: {e}"))?;
        JobKind::Campaign { spec: text }
    };
    let submission = Submission {
        kind,
        priority,
        client: client.unwrap_or_else(|| "anonymous".to_string()),
        // The server picks its own skip policy and SoC engine; results
        // are identical either way, so the CLI does not forward its
        // local `--skip` / `--soc-jobs`.
        skip: None,
        soc_jobs: None,
        // The client stamps a fresh key per submit call.
        idempotency_key: None,
    };
    let api = Client::new(addr);
    let id = api.submit(&submission)?;
    if !wait {
        // Just the id on stdout, so scripts can capture it.
        println!("{id}");
        return Ok(());
    }
    eprintln!("job {id} submitted; waiting");
    let status = api.wait(id, std::time::Duration::from_millis(200))?;
    match status.get("state").and_then(Json::as_str) {
        Some("done") => {
            // The canonical bytes, exactly as the direct command would
            // have printed them.
            print!("{}", api.result(id)?);
            // A job that finished with failing cells still fails the
            // command, mirroring the direct CLI's exit semantics.
            if matches!(status.get("passed"), Some(Json::Bool(false))) {
                return Err("job finished with failures (see the report)".into());
            }
            Ok(())
        }
        Some("cancelled") => Err(format!("job {id} was cancelled").into()),
        _ => Err(format!(
            "job {id} failed: {}",
            status
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
        )
        .into()),
    }
}

/// `status`: one job's status document, or one JSONL line per job.
fn status(addr: &str, id: Option<u64>) -> Result<()> {
    use icicle_serve::Client;
    let api = Client::new(addr);
    match id {
        Some(id) => println!("{}", api.status(id)?.render()),
        None => {
            for doc in api.jobs()? {
                println!("{}", doc.render_compact());
            }
        }
    }
    Ok(())
}

/// `result`: a finished job's canonical output, verbatim.
fn job_result(addr: &str, id: u64) -> Result<()> {
    use icicle_serve::Client;
    print!("{}", Client::new(addr).result(id)?);
    Ok(())
}

/// `cancel`: request cancellation and print the status after it.
fn cancel(addr: &str, id: u64) -> Result<()> {
    use icicle_serve::Client;
    println!("{}", Client::new(addr).cancel(id)?.render());
    Ok(())
}

fn bench(
    json: bool,
    json_path: Option<&str>,
    baseline_path: Option<&str>,
    warmup: u32,
    repeats: u32,
    metrics_out: Option<&str>,
) -> Result<()> {
    use icicle_bench::ledger::{self, Ledger, LedgerOptions};
    if cfg!(debug_assertions) {
        eprintln!(
            "warning: this is a debug build; ledger timings will not be \
             comparable to release numbers"
        );
    }
    let baseline = match baseline_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read baseline ledger `{path}`: {e}"))?;
            Some(Ledger::parse(&text).map_err(|e| format!("bad baseline ledger `{path}`: {e}"))?)
        }
        None => None,
    };
    let registry = Arc::new(MetricsRegistry::new());
    let sim_baseline = icicle::obs::sim_stats().counts();
    if metrics_out.is_some() {
        icicle::obs::set_sim_stats(true);
    }
    // Progress ticks are ephemeral terminal feedback; skip them when
    // stderr is redirected so logs stay clean.
    let ticks = std::io::stderr().is_terminal();
    let options = LedgerOptions {
        warmup,
        repeats,
        progress: if ticks {
            Some(Box::new(|done, total, key| {
                eprint!("\r[{done}/{total}] {key:<40}");
            }))
        } else {
            None
        },
        metrics: Some(Arc::clone(&registry)),
        ..LedgerOptions::default()
    };
    let mut ledger = ledger::run_grid(&ledger::default_grid(), &options)?;
    if ticks {
        eprintln!();
    }
    if let Some(base) = &baseline {
        ledger = ledger.with_baseline(base);
    }
    // Under --json, stdout carries exactly the canonical ledger and
    // nothing else; the human table moves to stderr.
    if json {
        print!("{}", ledger.to_json());
        eprint!("{ledger}");
    } else {
        print!("{ledger}");
    }
    if let Some(path) = json_path {
        icicle::obs::write_atomic(path, &ledger.to_json())
            .map_err(|e| format!("cannot write ledger `{path}`: {e}"))?;
    }
    if let Some(path) = metrics_out {
        write_metrics(path, &registry, sim_baseline)?;
    }
    Ok(())
}

fn bench_compare(old_path: &str, new_path: &str, tolerance: f64) -> Result<()> {
    use icicle_bench::ledger::{compare, Ledger};
    let read = |path: &str| -> Result<Ledger> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read ledger `{path}`: {e}"))?;
        Ok(Ledger::parse(&text).map_err(|e| format!("bad ledger `{path}`: {e}"))?)
    };
    let old = read(old_path)?;
    let new = read(new_path)?;
    let report = compare(&old, &new, tolerance);
    print!("{report}");
    if !report.passed() {
        return Err(format!(
            "throughput regression: {} cells beyond {:.0}% tolerance, {} missing",
            report.regressions(),
            tolerance * 100.0,
            report.missing.len()
        )
        .into());
    }
    Ok(())
}

fn lookup(name: &str) -> Result<Workload> {
    icicle::workloads::by_name(name)
        .ok_or_else(|| format!("unknown workload `{name}` (see `icicle-tma list`)").into())
}

fn measure(workload: &Workload, core: CoreSelect, perf: Perf) -> Result<PerfReport> {
    let stream = workload.execute()?;
    let report = match core {
        CoreSelect::Rocket => {
            let mut c = Rocket::new(RocketConfig::default(), stream);
            perf.run(&mut c)?
        }
        CoreSelect::Boom(size) => {
            let mut c = Boom::new(BoomConfig::for_size(size), stream, workload.program_arc());
            perf.run(&mut c)?
        }
        CoreSelect::Soc(mix) => {
            return Err(format!(
                "`{mix}` is a multi-core mix; run it through `icicle-tma campaign` \
                 (or compose cores with `icicle-tma soc`)"
            )
            .into())
        }
    };
    Ok(report)
}

fn list(json: bool) -> Result<()> {
    use icicle::campaign::json::Json;
    let workloads: Vec<String> = icicle::workloads::catalog()
        .iter()
        .map(|w| w.name().to_string())
        .collect();
    let cores: Vec<String> = CoreSelect::all()
        .into_iter()
        .map(CoreSelect::name)
        .collect();
    let archs: Vec<String> = CounterArch::ALL
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    if json {
        let as_strings =
            |names: &[String]| Json::Array(names.iter().map(|n| Json::Str(n.clone())).collect());
        let doc = Json::object(vec![
            ("workloads", as_strings(&workloads)),
            ("cores", as_strings(&cores)),
            ("archs", as_strings(&archs)),
        ]);
        println!("{}", doc.render());
        return Ok(());
    }
    println!("workloads:");
    for w in &workloads {
        println!("  {w}");
    }
    println!("\ncores:");
    for c in &cores {
        println!("  {c}");
    }
    println!("\ncounter archs:");
    for a in &archs {
        println!("  {a}");
    }
    Ok(())
}

fn campaign(cmd: Command) -> Result<()> {
    use icicle::campaign::{
        run_campaign, CampaignSpec, CheckpointLog, Progress, ResultCache, RunOptions,
    };
    let Command::Campaign {
        spec: path,
        jobs,
        no_cache,
        cache_dir,
        keep_going,
        retries,
        resume,
        json,
        csv,
        metrics_out,
    } = cmd
    else {
        unreachable!("run() dispatches only Campaign here");
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read campaign spec `{path}`: {e}"))?;
    let spec = CampaignSpec::parse(&text)?;
    let cache = if no_cache {
        None
    } else {
        Some(Arc::new(ResultCache::with_disk(&cache_dir).map_err(
            |e| format!("cannot open cache dir `{cache_dir}`: {e}"),
        )?))
    };
    // Completed cells are checkpointed next to the disk cache so a
    // killed campaign can `--resume`; corrupt logs are quarantined by
    // the open itself, never fatal.
    let checkpoint = if no_cache {
        None
    } else {
        let log_path = std::path::Path::new(&cache_dir).join(format!("{}.checkpoint", spec.name));
        let log = CheckpointLog::open(&log_path)
            .map_err(|e| format!("cannot open checkpoint `{}`: {e}", log_path.display()))?;
        if let Some(quarantined) = log.quarantined() {
            eprintln!(
                "warning: corrupt checkpoint entries quarantined to {}",
                quarantined.display()
            );
        }
        Some(Arc::new(log))
    };
    // Machine-readable modes keep stdout clean; progress ticks go to
    // stderr, and only when it is a live terminal — piped JSON/CSV and
    // redirected logs see none of them.
    let quiet = json || csv;
    let ticks = !quiet && std::io::stderr().is_terminal();
    let registry = Arc::new(MetricsRegistry::new());
    let sim_baseline = icicle::obs::sim_stats().counts();
    if metrics_out.is_some() {
        icicle::obs::set_sim_stats(true);
    }
    // The tick line is rendered from the metrics registry: the progress
    // callback folds each report into gauges, then formats from those
    // same gauges, so the ETA shown is exactly what --metrics-out
    // records.
    let tick_registry = Arc::clone(&registry);
    let started = Instant::now();
    let options = RunOptions {
        jobs,
        cache,
        checkpoint,
        resume,
        retries,
        keep_going,
        progress: if ticks {
            Some(Box::new(move |p: Progress| {
                let done = p.done();
                let gauges = &tick_registry;
                gauges.gauge("campaign.progress.done").set(done as f64);
                gauges.gauge("campaign.progress.total").set(p.total as f64);
                let elapsed = started.elapsed().as_secs_f64();
                if done > 0 {
                    let eta = elapsed / done as f64 * (p.total - done) as f64;
                    gauges.gauge("campaign.progress.eta_seconds").set(eta);
                }
                let eta = match gauges.gauge("campaign.progress.eta_seconds").get() {
                    eta if done > 0 && done < p.total => format!(" eta {}", format_eta(eta)),
                    _ => String::new(),
                };
                eprint!(
                    "\r[{}/{}] {} simulated, {} cached, {} resumed, {} failed, {} skipped{}",
                    gauges.gauge("campaign.progress.done").get() as u64,
                    gauges.gauge("campaign.progress.total").get() as u64,
                    p.simulated,
                    p.cached,
                    p.resumed,
                    p.failed,
                    p.skipped,
                    eta
                );
            }))
        } else {
            None
        },
        metrics: Some(Arc::clone(&registry)),
        ..RunOptions::default()
    };
    let report = run_campaign(&spec, &options);
    if ticks {
        eprintln!();
    }
    if let Some(path) = &metrics_out {
        write_metrics(path, &registry, sim_baseline)?;
    }
    if json {
        print!("{}", report.to_json());
    } else if csv {
        print!("{}", report.to_csv());
    } else {
        println!("{report}");
    }
    // Completed cells are never discarded: the full report is emitted
    // above before the nonzero exit signals the failures.
    if !report.passed() {
        return Err(format!(
            "campaign completed with {} failed and {} skipped cells",
            report.failures.len(),
            report.skipped.len()
        )
        .into());
    }
    Ok(())
}

/// Restores the panic hook it displaced when dropped, so injected-fault
/// runs can't leave the process with a silenced hook on any exit path.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct PanicHookGuard(Option<PanicHook>);

impl PanicHookGuard {
    fn silence() -> PanicHookGuard {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        PanicHookGuard(Some(previous))
    }
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.0.take() {
            std::panic::set_hook(previous);
        }
    }
}

fn faults(seed: u64, cases: u64, demo: bool, report_path: Option<&str>, json: bool) -> Result<()> {
    use icicle::campaign::{run_campaign, Progress, RunOptions};
    use icicle::faults::{FaultInjector, FaultPlan};
    use icicle::verify::{fault_fuzz_spec, run_fault_fuzz, FaultFuzzOptions};
    use std::sync::Arc;

    // Every injected panic is caught by the supervised runner and
    // reported as a typed failure; the default hook's backtraces would
    // only drown the report.
    let _hook = PanicHookGuard::silence();

    if demo {
        // One injected-fault campaign, narrated: the plan up front, the
        // degraded report after, and which faults actually fired.
        let spec = fault_fuzz_spec();
        let plan = FaultPlan::generate(seed, spec.cells().len());
        let injector = Arc::new(FaultInjector::new(plan.clone()));
        if !json {
            println!("{}", plan.describe());
        }
        let report = run_campaign(
            &spec,
            &RunOptions {
                jobs: 2,
                retries: 1,
                faults: Some(Arc::clone(&injector)),
                // Injected worker panics leave their flight-recorder
                // dump behind, same as a real crash would.
                postmortem_dir: Some(std::path::PathBuf::from(".icicle-postmortem")),
                ..RunOptions::default()
            },
        );
        if json {
            print!("{}", report.to_json());
        } else {
            println!("{report}");
            let fired = injector.fired();
            if !fired.is_empty() {
                println!("faults fired: {}", fired.join(", "));
            }
        }
        if let Some(path) = report_path {
            icicle::obs::write_atomic(path, &report.to_json())
                .map_err(|e| format!("cannot write report `{path}`: {e}"))?;
        }
        if !report.passed() {
            return Err(format!(
                "fault demo degraded gracefully: {} failed, {} skipped cells",
                report.failures.len(),
                report.skipped.len()
            )
            .into());
        }
        return Ok(());
    }

    let options = FaultFuzzOptions {
        cases,
        seed,
        progress: if json {
            None
        } else {
            Some(Box::new(|p: Progress| {
                eprint!(
                    "\r[{}/{}] fault plans, {} violating",
                    p.done(),
                    p.total,
                    p.failed
                );
            }))
        },
    };
    let report = run_fault_fuzz(&options);
    if !json {
        eprintln!();
    }
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if let Some(path) = report_path {
        icicle::obs::write_atomic(path, &report.to_json())
            .map_err(|e| format!("cannot write report `{path}`: {e}"))?;
    }
    if !report.passed() {
        return Err(format!(
            "fault fuzzing found {} graceful-degradation violations",
            report.violations.len()
        )
        .into());
    }
    Ok(())
}

/// `chaos`: fuzz the analysis server through the fault-injecting proxy
/// against the no-lost-jobs contract.
fn chaos(
    seed: u64,
    cases: u64,
    connections: usize,
    weaken: Option<&str>,
    report_path: Option<&str>,
    json: bool,
) -> Result<()> {
    use icicle_serve::{run_chaos, ChaosOptions, Weaken};
    let weaken = match weaken {
        None => Weaken::None,
        Some("read-deadline") => Weaken::ReadDeadline,
        Some(other) => return Err(format!("unknown --weaken knob `{other}`").into()),
    };
    if !json {
        eprintln!("chaos: fuzzing {cases} fault schedule(s) from seed {seed}");
    }
    let report = run_chaos(&ChaosOptions {
        seed,
        cases,
        connections,
        weaken,
        data_root: None,
    });
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if let Some(path) = report_path {
        icicle::obs::write_atomic(path, &report.to_json())
            .map_err(|e| format!("cannot write report `{path}`: {e}"))?;
    }
    if !report.passed() {
        return Err(format!(
            "chaos found {} contract-violating schedule(s)",
            report.violations.len()
        )
        .into());
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn verify(
    matrix: bool,
    fuzz: Option<u64>,
    pdes: Option<u64>,
    seed: u64,
    bound: Option<f64>,
    jobs: usize,
    report_path: Option<&str>,
    json: bool,
    metrics_out: Option<&str>,
) -> Result<()> {
    use icicle::campaign::Progress;
    use icicle::verify::{
        default_matrix, run_fuzz, run_matrix, run_pdes, FuzzOptions, MatrixOptions, PdesOptions,
    };

    // The machine artifact accumulates one JSON document per phase;
    // stdout mirrors it under --json, or carries the human summary.
    let mut artifact = String::new();
    let mut all_passed = true;
    let registry = Arc::new(MetricsRegistry::new());
    let sim_baseline = icicle::obs::sim_stats().counts();
    if metrics_out.is_some() {
        icicle::obs::set_sim_stats(true);
    }
    let ticks = !json && std::io::stderr().is_terminal();

    if matrix {
        let spec = default_matrix();
        let options = MatrixOptions {
            jobs,
            flat_bound: bound,
            progress: if ticks {
                Some(Box::new(|p: Progress| {
                    eprint!(
                        "\r[{}/{}] {} within bound, {} diverged or failed",
                        p.done(),
                        p.total,
                        p.simulated,
                        p.failed
                    );
                }))
            } else {
                None
            },
            metrics: Some(Arc::clone(&registry)),
            // `None`: the ambient policy (`--skip` / `ICICLE_SKIP`)
            // applies.
            skip: None,
        };
        let report = run_matrix(&spec, &options);
        if ticks {
            eprintln!();
        }
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{report}");
        }
        artifact.push_str(&report.to_json());
        all_passed &= report.passed();
    }

    if let Some(cases) = fuzz {
        let options = FuzzOptions {
            cases,
            seed,
            flat_bound: bound,
            progress: if ticks {
                Some(Box::new(|p: Progress| {
                    eprint!(
                        "\r[{}/{}] fuzz cases, {} diverged or errored",
                        p.done(),
                        p.total,
                        p.failed
                    );
                }))
            } else {
                None
            },
            ..FuzzOptions::default()
        };
        let report = run_fuzz(&options);
        if ticks {
            eprintln!();
        }
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{report}");
        }
        artifact.push_str(&report.to_json());
        all_passed &= report.passed();
    }

    if let Some(cases) = pdes {
        let options = PdesOptions {
            cases,
            seed,
            progress: if ticks {
                Some(Box::new(|p: Progress| {
                    eprint!(
                        "\r[{}/{}] PDES scenarios, {} diverged or errored",
                        p.done(),
                        p.total,
                        p.failed
                    );
                }))
            } else {
                None
            },
            // A divergence dumps the flight rings next to the report.
            postmortem_dir: Some(std::path::PathBuf::from(".icicle-postmortem")),
            ..PdesOptions::default()
        };
        let report = run_pdes(&options);
        if ticks {
            eprintln!();
        }
        if json {
            print!("{}", report.to_json());
        } else {
            print!("{report}");
        }
        artifact.push_str(&report.to_json());
        all_passed &= report.passed();
    }

    if let Some(path) = report_path {
        icicle::obs::write_atomic(path, &artifact)
            .map_err(|e| format!("cannot write report `{path}`: {e}"))?;
    }
    if let Some(path) = metrics_out {
        write_metrics(path, &registry, sim_baseline)?;
    }

    if !all_passed {
        return Err(
            "verification failed: a phase diverged (counter TMA vs the trace ground truth, \
             or the parallel SoC engine vs lockstep)"
                .into(),
        );
    }
    Ok(())
}

fn tma(name: &str, core: CoreSelect, arch: CounterArch, json: bool) -> Result<()> {
    let workload = lookup(name)?;
    let report = measure(
        &workload,
        core,
        Perf::with_options(PerfOptions {
            arch,
            ..PerfOptions::default()
        }),
    )?;
    if json {
        println!("{}", report_json(&workload, &report));
    } else {
        println!("{report}");
    }
    Ok(())
}

/// A machine-readable rendering of the report (hand-rolled: the
/// workspace keeps its dependency set to the simulation essentials).
fn report_json(workload: &Workload, r: &PerfReport) -> String {
    let t = &r.tma;
    format!(
        concat!(
            "{{\n",
            "  \"workload\": \"{}\",\n",
            "  \"core\": \"{}\",\n",
            "  \"cycles\": {},\n",
            "  \"instret\": {},\n",
            "  \"ipc\": {:.6},\n",
            "  \"tma\": {{\n",
            "    \"retiring\": {:.6},\n",
            "    \"bad_speculation\": {:.6},\n",
            "    \"frontend\": {:.6},\n",
            "    \"backend\": {:.6},\n",
            "    \"machine_clears\": {:.6},\n",
            "    \"branch_mispredicts\": {:.6},\n",
            "    \"fetch_latency\": {:.6},\n",
            "    \"pc_resteers\": {:.6},\n",
            "    \"mem_bound\": {:.6},\n",
            "    \"core_bound\": {:.6},\n",
            "    \"itlb_bound\": {:.6},\n",
            "    \"dtlb_bound\": {:.6}\n",
            "  }}\n",
            "}}"
        ),
        workload.name(),
        r.core_name,
        r.cycles,
        r.instret,
        r.ipc(),
        t.top.retiring,
        t.top.bad_speculation,
        t.top.frontend,
        t.top.backend,
        t.bad_spec.machine_clears,
        t.bad_spec.branch_mispredicts,
        t.frontend.fetch_latency,
        t.frontend.pc_resteers,
        t.backend.mem_bound,
        t.backend.core_bound,
        r.tlb.itlb_bound,
        r.tlb.dtlb_bound,
    )
}

fn trace(name: &str, core: CoreSelect, window: u64, start: Option<u64>) -> Result<()> {
    let workload = lookup(name)?;
    let channels = vec![
        TraceChannel::scalar(EventId::ICacheMiss),
        TraceChannel::scalar(EventId::ICacheBlocked),
        TraceChannel::scalar(EventId::FetchBubbles),
        TraceChannel::scalar(EventId::Recovering),
        TraceChannel::scalar(EventId::BranchMispredict),
        TraceChannel::scalar(EventId::DCacheMiss),
    ];
    let report = measure(
        &workload,
        core,
        Perf::new().trace(TraceConfig::new(channels.clone())?),
    )?;
    let trace = report.trace.as_ref().expect("tracing enabled");
    let begin = start
        .or_else(|| trace.windows(0).first().map(|w| w.start.saturating_sub(4)))
        .unwrap_or(0)
        .min(trace.len() as u64);
    let end = (begin + window).min(trace.len() as u64);
    println!(
        "{} on {}: cycles {begin}..{end} of {}",
        workload.name(),
        report.core_name,
        trace.len()
    );
    for (bit, ch) in channels.iter().enumerate() {
        let mut row = String::new();
        for cycle in begin..end {
            row.push(if trace.is_high(bit, cycle) { '*' } else { '.' });
        }
        println!("{:>14} |{row}|", ch.to_string());
    }
    Ok(())
}

/// `trace export`: run one cell and emit its cycle timeline as a Chrome
/// `trace_events` document for ui.perfetto.dev.
fn trace_export(cell: &str, out: Option<&str>, window: Option<u64>) -> Result<()> {
    use icicle::campaign::CellSpec;
    let parts: Vec<&str> = cell.split('/').collect();
    let [workload, core, arch] = parts.as_slice() else {
        return Err(format!("--cell expects workload/core/arch, got `{cell}`").into());
    };
    let spec = CellSpec {
        workload: (*workload).to_string(),
        core: CoreSelect::from_name(core).ok_or_else(|| format!("unknown core `{core}`"))?,
        arch: CounterArch::from_name(arch)
            .ok_or_else(|| format!("unknown counter arch `{arch}`"))?,
        seed: 0,
        repeat: 0,
        max_cycles: 100_000_000,
    };
    let doc = icicle::verify::export_cell_timeline(&spec, window.map(|w| w as usize))?;
    let rendered = doc.render();
    match out {
        Some(path) => {
            icicle::obs::write_atomic(path, &rendered)
                .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
            eprintln!("wrote {path}; open it in ui.perfetto.dev");
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

fn lanes(name: &str, core: CoreSelect) -> Result<()> {
    let workload = lookup(name)?;
    let report = measure(
        &workload,
        core,
        Perf::new()
            .lanes(EventId::FetchBubbles)
            .lanes(EventId::DCacheBlocked)
            .lanes(EventId::UopsIssued)
            .lanes(EventId::UopsRetired),
    )?;
    println!(
        "{} on {}: per-lane rates over {} cycles",
        workload.name(),
        report.core_name,
        report.cycles
    );
    for acc in &report.lanes {
        print!("{:>14}:", acc.event().name());
        for lane in 0..icicle::events::MAX_LANES {
            if acc.lane_total(lane) > 0 || lane < 2 {
                print!(" {:.3}", acc.lane_rate(lane));
            }
        }
        println!();
    }
    Ok(())
}

fn counters(name: &str, core: CoreSelect) -> Result<()> {
    let workload = lookup(name)?;
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "event", "stock", "scalar", "add-wires", "distributed"
    );
    let mut reports = Vec::new();
    for arch in [
        CounterArch::Stock,
        CounterArch::Scalar,
        CounterArch::AddWires,
        CounterArch::Distributed,
    ] {
        reports.push(measure(
            &workload,
            core,
            Perf::with_options(PerfOptions {
                arch,
                ..PerfOptions::default()
            }),
        )?);
    }
    for event in [
        EventId::UopsIssued,
        EventId::UopsRetired,
        EventId::FetchBubbles,
        EventId::DCacheBlocked,
        EventId::Recovering,
        EventId::ICacheBlocked,
    ] {
        print!("{:<14}", event.name());
        for r in &reports {
            print!(" {:>14}", r.hw_counts.get(event));
        }
        println!();
    }
    Ok(())
}

fn profile(name: &str, core: CoreSelect, period: u64, event: Option<EventId>) -> Result<()> {
    let workload = lookup(name)?;
    let profiler = Profiler::new(period);
    let stream = workload.execute()?;
    let run = |c: &mut dyn icicle::events::EventCore| -> Result<icicle::perf::Profile> {
        Ok(match event {
            Some(e) => profiler.profile_event(c, workload.program(), e)?,
            None => profiler.profile(c, workload.program())?,
        })
    };
    let profile = match core {
        CoreSelect::Rocket => {
            let mut c = Rocket::new(RocketConfig::default(), stream);
            run(&mut c)?
        }
        CoreSelect::Boom(size) => {
            let mut c = Boom::new(BoomConfig::for_size(size), stream, workload.program_arc());
            run(&mut c)?
        }
        CoreSelect::Soc(mix) => {
            return Err(format!(
                "`{mix}` is a multi-core mix; the sampling profiler attributes \
                 PCs on a single core — profile each core's workload separately"
            )
            .into())
        }
    };
    if let Some(e) = event {
        println!("sampling on `{e}` (PC skid applies):");
    }
    print!("{profile}");
    Ok(())
}

fn soc(pairs: &[(String, CoreSelect)]) -> Result<()> {
    let mut builder = SocBuilder::new();
    for (name, core) in pairs {
        let w = lookup(name)?;
        builder = match core {
            CoreSelect::Rocket => builder.rocket(RocketConfig::default(), &w)?,
            CoreSelect::Boom(size) => builder.boom(BoomConfig::for_size(*size), &w)?,
            CoreSelect::Soc(mix) => {
                return Err(format!(
                    "`{mix}` is itself a mix; list individual cores (rocket, \
                     small-boom, medium-boom, large-boom) to compose an SoC"
                )
                .into())
            }
        };
    }
    let mut soc = builder.build();
    // `run_auto` honours the ambient engine choice (`--soc-jobs` /
    // ICICLE_SOC_JOBS); results are byte-identical at any thread count.
    let reports = soc.run_auto(1_000_000_000)?;
    println!(
        "{:<18} {:<12} {:>10} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "workload", "core", "cycles", "ipc", "retiring", "bad-spec", "frontend", "backend"
    );
    for r in &reports {
        println!(
            "{:<18} {:<12} {:>10} {:>6.2} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            r.workload,
            r.report.core_name,
            r.report.cycles,
            r.report.ipc(),
            100.0 * r.report.tma.top.retiring,
            100.0 * r.report.tma.top.bad_speculation,
            100.0 * r.report.tma.top.frontend,
            100.0 * r.report.tma.top.backend,
        );
    }
    println!(
        "shared L2: {} accesses, {} bus-queueing cycles",
        soc.shared_l2().accesses(),
        soc.shared_l2().contention_cycles()
    );
    Ok(())
}

fn vlsi() -> Result<()> {
    println!(
        "{:<8} {:<12} {:>8} {:>8} {:>12} {:>10} {:>8}",
        "size", "impl", "power", "area", "wirelength", "csr-path", "200MHz"
    );
    for size in BoomSize::ALL {
        for arch in [
            CounterArch::Scalar,
            CounterArch::AddWires,
            CounterArch::Distributed,
        ] {
            let r = icicle::vlsi::evaluate(size, arch);
            println!(
                "{:<8} {:<12} {:>7.2}% {:>7.2}% {:>11.2}% {:>9.3}x {:>8}",
                size.name(),
                format!("{arch:?}"),
                r.power_overhead_pct(),
                r.area_overhead_pct(),
                r.wirelength_overhead_pct(),
                r.normalized_csr_delay(),
                if r.meets_200mhz() { "pass" } else { "FAIL" }
            );
        }
    }
    Ok(())
}
