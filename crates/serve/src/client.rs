//! The thin blocking client the CLI verbs (and tests) use.
//!
//! One method per endpoint, one TCP connection per call (the server
//! closes every connection after its response). The client never
//! interprets result bodies — `result` hands back the canonical bytes
//! exactly as served, preserving the CLI-equivalence contract end to
//! end.

use std::fmt;
use std::time::Duration;

use icicle_obs::Json;

use crate::http::roundtrip;
use crate::job::Submission;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a non-success status.
    Http {
        /// The HTTP status code.
        status: u16,
        /// The `error` field of the body, or the raw body.
        message: String,
    },
    /// The transport or the response shape failed.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Http { status, message } => write!(f, "server said {status}: {message}"),
            ClientError::Protocol(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A handle on one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let response = roundtrip(&self.addr, method, path, body).map_err(ClientError::Protocol)?;
        Ok((response.status, response.body))
    }

    fn expect_success(&self, outcome: (u16, String)) -> Result<String, ClientError> {
        let (status, body) = outcome;
        if (200..300).contains(&status) {
            return Ok(body);
        }
        let message = Json::parse(&body)
            .ok()
            .and_then(|doc| doc.get("error").and_then(Json::as_str).map(str::to_string))
            .unwrap_or(body);
        Err(ClientError::Http { status, message })
    }

    /// `GET /healthz`: whether the server is up.
    pub fn health(&self) -> bool {
        matches!(self.call("GET", "/healthz", None), Ok((200, _)))
    }

    /// `POST /v1/jobs`: submits and returns the assigned job id.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on rejection (400 bad request, 429 shed) or
    /// transport failure.
    pub fn submit(&self, submission: &Submission) -> Result<u64, ClientError> {
        let body = submission.to_json().render();
        let outcome = self.call("POST", "/v1/jobs", Some(&body))?;
        let body = self.expect_success(outcome)?;
        Json::parse(&body)
            .ok()
            .and_then(|doc| doc.get("id").and_then(Json::as_u64))
            .ok_or_else(|| ClientError::Protocol(format!("malformed submit response: {body}")))
    }

    /// `GET /v1/jobs/<id>`: the status document.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on 404 or transport failure.
    pub fn status(&self, id: u64) -> Result<Json, ClientError> {
        let outcome = self.call("GET", &format!("/v1/jobs/{id}"), None)?;
        let body = self.expect_success(outcome)?;
        Json::parse(&body).map_err(|e| ClientError::Protocol(format!("malformed status: {e}")))
    }

    /// Polls status until the job is terminal; returns the final
    /// status document.
    ///
    /// # Errors
    ///
    /// Propagates any polling failure.
    pub fn wait(&self, id: u64, poll: Duration) -> Result<Json, ClientError> {
        loop {
            let status = self.status(id)?;
            let state = status
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("status without state".to_string()))?;
            if matches!(state, "done" | "failed" | "cancelled") {
                return Ok(status);
            }
            std::thread::sleep(poll);
        }
    }

    /// `GET /v1/jobs`: status documents for every job the server has
    /// accepted, oldest first.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a malformed body.
    pub fn jobs(&self) -> Result<Vec<Json>, ClientError> {
        let outcome = self.call("GET", "/v1/jobs", None)?;
        let body = self.expect_success(outcome)?;
        match Json::parse(&body) {
            Ok(Json::Array(statuses)) => Ok(statuses),
            Ok(_) => Err(ClientError::Protocol(format!(
                "job listing is not an array: {body}"
            ))),
            Err(e) => Err(ClientError::Protocol(format!("malformed job listing: {e}"))),
        }
    }

    /// `GET /v1/jobs/<id>/result`: the canonical engine output,
    /// byte-for-byte as the CLI would print it.
    ///
    /// # Errors
    ///
    /// [`ClientError`] while the job is unfinished (409), unknown
    /// (404), or failed (500 with the failure message).
    pub fn result(&self, id: u64) -> Result<String, ClientError> {
        let outcome = self.call("GET", &format!("/v1/jobs/{id}/result"), None)?;
        self.expect_success(outcome)
    }

    /// `POST /v1/jobs/<id>/cancel`: requests cancellation; returns the
    /// status after the request.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on 404 or transport failure.
    pub fn cancel(&self, id: u64) -> Result<Json, ClientError> {
        let outcome = self.call("POST", &format!("/v1/jobs/{id}/cancel"), None)?;
        let body = self.expect_success(outcome)?;
        Json::parse(&body)
            .map_err(|e| ClientError::Protocol(format!("malformed cancel response: {e}")))
    }

    /// `GET /metrics`: the server metrics document.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure.
    pub fn metrics(&self) -> Result<String, ClientError> {
        let outcome = self.call("GET", "/metrics", None)?;
        self.expect_success(outcome)
    }
}
